use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use splpg_gnn::{FeatureAccess, GraphAccess};
use splpg_graph::{FeatureMatrix, Graph, NodeId};
use splpg_net::compress::{
    encoded_ids_len, f16_round_trip, feature_wire_bytes, int8_round_trip, varint_len,
};
use splpg_net::{CodecConfig, FeatCodec, ShmLane, StructCodec};

use crate::CommTracker;

/// Default capacity (in rows) of the per-epoch remote feature-row cache.
///
/// DistDGL-style deployments cache hot remote features worker-side; a
/// remote row is priced on first fetch within an epoch and free on
/// re-fetch while it stays cached. Parameter refreshes invalidate the
/// cache, so it is cleared at every epoch boundary
/// ([`WorkerView::begin_epoch`]).
pub const DEFAULT_FEATURE_CACHE_ROWS: usize = 8192;

/// Per-epoch membership set of remote feature rows already fetched (and
/// therefore free to re-read until the next epoch).
#[derive(Debug, Default)]
struct RowCache {
    epoch: u64,
    rows: BTreeSet<NodeId>,
}

/// How a worker reaches graph structure outside its own partition.
#[derive(Debug, Clone)]
pub enum RemoteMode {
    /// No remote access: unknown nodes have no visible neighbors.
    None,
    /// Complete data sharing: the full (training) graph in the master's
    /// shared memory; every neighbor fetch is metered.
    Full {
        /// The full training graph.
        graph: Arc<Graph>,
    },
    /// SpLPG: sparsified per-partition subgraphs; fetches are served from
    /// the owner partition's sparsified copy and metered.
    Sparsified {
        /// Sparsified subgraph of each partition, in global id space.
        parts: Arc<Vec<Graph>>,
        /// Owner partition of every node.
        owner: Arc<Vec<u32>>,
    },
}

/// One worker's data plane: local partition (free) + optional remote
/// access (metered).
///
/// All graphs live in the *global* node-id space; "local" is defined by
/// two membership vectors:
///
/// * `structure_local[v]` — `v`'s adjacency is served from the local
///   subgraph at no cost (partition nodes; halo nodes carry the partial
///   adjacency the halo stores);
/// * `feature_local[v]` — `v`'s feature row was copied to this worker at
///   partition time (partition nodes, plus halo under full-neighbor
///   retention) and costs nothing to read.
///
/// Everything else goes through [`RemoteMode`] and is priced on the shared
/// [`CommTracker`]. Edge-existence checks for negative-sample rejection are
/// control-plane and unmetered (the paper's cost metric counts graph-data
/// payloads).
#[derive(Debug, Clone)]
pub struct WorkerView {
    local: Arc<Graph>,
    structure_local: Arc<Vec<bool>>,
    feature_local: Arc<Vec<bool>>,
    features: Arc<FeatureMatrix>,
    remote: RemoteMode,
    tracker: CommTracker,
    /// Shared across clones of this view (replicas clone the view per
    /// batch), so cached rows stay free for the whole epoch.
    feature_cache: Arc<Mutex<RowCache>>,
    feature_cache_rows: usize,
    /// Wire codec the data plane prices transfers under; quantized
    /// feature codecs also round-trip remote rows through the quantizer
    /// so training sees exactly what the wire would deliver.
    wire_codec: CodecConfig,
    /// Shared-memory feature bus: when attached, remote feature rows
    /// are zero-copy gathers from the mapped segment, metered on the
    /// local-bus plane instead of the raw/wire planes (and never
    /// quantized — no wire is crossed).
    bus: Option<ShmLane>,
}

impl WorkerView {
    /// Assembles a worker view.
    ///
    /// # Panics
    ///
    /// Panics if membership vector lengths disagree with the graph.
    pub fn new(
        local: Arc<Graph>,
        structure_local: Arc<Vec<bool>>,
        feature_local: Arc<Vec<bool>>,
        features: Arc<FeatureMatrix>,
        remote: RemoteMode,
        tracker: CommTracker,
    ) -> Self {
        assert_eq!(local.num_nodes(), structure_local.len());
        assert_eq!(local.num_nodes(), feature_local.len());
        assert_eq!(local.num_nodes(), features.num_rows());
        WorkerView {
            local,
            structure_local,
            feature_local,
            features,
            remote,
            tracker,
            feature_cache: Arc::new(Mutex::new(RowCache::default())),
            feature_cache_rows: DEFAULT_FEATURE_CACHE_ROWS,
            wire_codec: CodecConfig::default(),
            bus: None,
        }
    }

    /// Sets the wire codec remote fetches are priced (and, for lossy
    /// feature codecs, degraded) under. The default shipping codec is
    /// uncompressed: wire bytes equal the raw byte model exactly.
    #[must_use]
    pub fn with_wire_codec(mut self, codec: CodecConfig) -> Self {
        self.wire_codec = codec;
        self
    }

    /// Attaches a shared-memory feature lane: remote feature rows are
    /// served zero-copy from the mapped segment and metered on the
    /// local-bus plane. The lane must cover the full global feature
    /// matrix (`rows == features.num_rows()`, same `dim`) — segment
    /// validation at attach time enforces exactly that geometry.
    ///
    /// # Panics
    ///
    /// Panics if the lane's geometry disagrees with the view's feature
    /// matrix — a wiring bug, not a runtime fault (runtime faults are
    /// caught at [`ShmLane::attach`] and degrade to the wire path).
    #[must_use]
    pub fn with_feature_bus(mut self, lane: ShmLane) -> Self {
        assert_eq!(lane.rows(), self.features.num_rows(), "bus segment row count");
        assert_eq!(lane.dim(), self.features.dim(), "bus segment feature dim");
        self.bus = Some(lane);
        self
    }

    /// Overrides the feature-row cache capacity (`0` disables caching:
    /// every remote row is metered on every fetch, the pre-cache
    /// behaviour).
    #[must_use]
    pub fn with_feature_cache_rows(mut self, rows: usize) -> Self {
        self.feature_cache_rows = rows;
        self
    }

    /// Declares the start of `epoch`: parameter refreshes invalidate
    /// cached activations, so the feature-row cache empties at every
    /// epoch boundary. Idempotent within an epoch.
    pub fn begin_epoch(&self, epoch: u64) {
        let mut cache = self.feature_cache.lock().expect("feature cache lock poisoned");
        if cache.epoch != epoch {
            cache.epoch = epoch;
            cache.rows.clear();
        }
    }

    /// The shared communication tracker.
    pub fn tracker(&self) -> &CommTracker {
        &self.tracker
    }

    /// Whether `v`'s adjacency is local.
    pub fn is_structure_local(&self, v: NodeId) -> bool {
        self.structure_local[v as usize]
    }

    /// Whether `v`'s features are local.
    pub fn is_feature_local(&self, v: NodeId) -> bool {
        self.feature_local[v as usize]
    }

    /// Appends `v`'s remote neighbor list to `out` and meters the
    /// transfer: the requested node id plus one edge record per returned
    /// neighbor — identical pricing to the pre-`neighbors_into` fetch
    /// path, so the wire-traffic ledger reconciles exactly.
    fn remote_neighbors_into(&self, v: NodeId, out: &mut Vec<(NodeId, f32)>) {
        let before = out.len();
        match &self.remote {
            RemoteMode::None => return,
            RemoteMode::Full { graph } => neighbor_list_into(graph, v, out),
            RemoteMode::Sparsified { parts, owner } => {
                neighbor_list_into(&parts[owner[v as usize] as usize], v, out)
            }
        }
        let edges = (out.len() - before) as u64;
        let wire = match self.wire_codec.structure {
            StructCodec::None => edges * crate::BYTES_PER_EDGE + crate::BYTES_PER_NODE_ID,
            codec => {
                // The compressed fetch ships the requested id, a neighbor
                // count, and the delta-packed neighbor-id stream.
                let ids: Vec<u64> = out[before..].iter().map(|&(u, _)| u64::from(u)).collect();
                (varint_len(u64::from(v)) + varint_len(edges) + encoded_ids_len(&ids, codec))
                    as u64
            }
        };
        self.tracker.add_structure_wire(edges, 1, wire);
    }
}

fn neighbor_list_into(graph: &Graph, v: NodeId, out: &mut Vec<(NodeId, f32)>) {
    let ids = graph.neighbors(v);
    match graph.neighbor_weights(v) {
        Some(ws) => out.extend(ids.iter().copied().zip(ws.iter().copied())),
        None => out.extend(ids.iter().map(|&u| (u, 1.0))),
    }
}

impl GraphAccess for WorkerView {
    fn num_nodes(&self) -> usize {
        self.local.num_nodes()
    }

    fn degree(&self, v: NodeId) -> usize {
        if self.structure_local[v as usize] {
            self.local.degree(v)
        } else {
            // Degree queries are control-plane metadata (a single integer
            // riding on the fetch protocol); not metered.
            match &self.remote {
                RemoteMode::None => 0,
                RemoteMode::Full { graph } => graph.degree(v),
                RemoteMode::Sparsified { parts, owner } => {
                    parts[owner[v as usize] as usize].degree(v)
                }
            }
        }
    }

    fn neighbors_into(&self, v: NodeId, out: &mut Vec<(NodeId, f32)>) {
        if self.structure_local[v as usize] {
            neighbor_list_into(&self.local, v, out);
        } else {
            self.remote_neighbors_into(v, out);
        }
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if self.local.has_edge(u, v) {
            return true;
        }
        match &self.remote {
            RemoteMode::None => false,
            RemoteMode::Full { graph } => graph.has_edge(u, v),
            RemoteMode::Sparsified { parts, owner } => {
                parts[owner[u as usize] as usize].has_edge(u, v)
                    || parts[owner[v as usize] as usize].has_edge(u, v)
            }
        }
    }
}

impl FeatureAccess for WorkerView {
    fn dim(&self) -> usize {
        self.features.dim()
    }

    fn gather_into(&mut self, nodes: &[NodeId], out: &mut Vec<f32>) {
        let remote_rows = if self.feature_cache_rows == 0 {
            nodes.iter().filter(|&&v| !self.feature_local[v as usize]).count() as u64
        } else {
            let mut cache = self.feature_cache.lock().expect("feature cache lock poisoned");
            let mut fetched = 0u64;
            for &v in nodes {
                if self.feature_local[v as usize] || cache.rows.contains(&v) {
                    continue;
                }
                fetched += 1;
                if cache.rows.len() < self.feature_cache_rows {
                    cache.rows.insert(v);
                }
            }
            fetched
        };
        let dim = self.features.dim();
        if remote_rows > 0 {
            match &self.bus {
                // Bus-served rows never touch the wire: metered on the
                // local-bus plane only, at the raw byte model.
                Some(_) => self.tracker.add_features_bus(remote_rows, dim as u64),
                None => self.tracker.add_features_wire(
                    remote_rows,
                    dim as u64,
                    feature_wire_bytes(remote_rows, dim as u64, self.wire_codec.features),
                ),
            }
        }
        let base = out.len();
        match &self.bus {
            Some(lane) => {
                // Local rows come from the worker's own copy; remote rows
                // are zero-copy reads straight out of the mapped segment.
                out.reserve(nodes.len() * dim);
                for &v in nodes {
                    if self.feature_local[v as usize] {
                        out.extend_from_slice(self.features.row(v));
                    } else {
                        out.extend_from_slice(lane.row(v as usize));
                    }
                }
                // No wire was crossed, so no quantization degradation —
                // bus reads deliver the stored f32 rows bit-exactly.
                return;
            }
            None => self.features.gather_into(nodes, out),
        }
        // Lossy feature codecs degrade every remote row the same way the
        // wire would, cached or not — determinism requires the training
        // arithmetic to be independent of cache hit patterns.
        if self.wire_codec.features != FeatCodec::F32 {
            for (i, &node) in nodes.iter().enumerate() {
                if self.feature_local[node as usize] {
                    continue;
                }
                let row = &mut out[base + i * dim..base + (i + 1) * dim];
                match self.wire_codec.features {
                    FeatCodec::F32 => {}
                    FeatCodec::F16 => f16_round_trip(row),
                    FeatCodec::Int8 => int8_round_trip(row),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Universe: path 0-1-2-3-4; worker owns {0, 1} (edges 0-1 and halo
    /// edge 1-2 present locally), features local for {0, 1, 2}.
    fn fixture(remote: RemoteMode) -> (WorkerView, CommTracker) {
        let full = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let local = Graph::from_edges(5, &[(0, 1), (1, 2)]).unwrap();
        let features = FeatureMatrix::from_rows(
            (0..5).map(|i| vec![i as f32, 1.0]).collect(),
        )
        .unwrap();
        let tracker = CommTracker::new();
        let view = WorkerView::new(
            Arc::new(local),
            Arc::new(vec![true, true, false, false, false]),
            Arc::new(vec![true, true, true, false, false]),
            Arc::new(features),
            match remote {
                RemoteMode::Full { .. } => RemoteMode::Full { graph: Arc::new(full) },
                other => other,
            },
            tracker.clone(),
        );
        (view, tracker)
    }

    #[test]
    fn local_fetches_are_free() {
        let (mut v, t) = fixture(RemoteMode::None);
        assert_eq!(v.neighbors(1), vec![(0, 1.0), (2, 1.0)]);
        let _ = v.gather(&[0, 1, 2]);
        assert_eq!(t.total_bytes(), 0);
    }

    #[test]
    fn remote_none_hides_outside_world() {
        let (v, _) = fixture(RemoteMode::None);
        assert!(v.neighbors(3).is_empty());
        assert_eq!(v.degree(3), 0);
        assert!(!v.has_edge(2, 3));
    }

    #[test]
    fn full_sharing_meters_structure() {
        let dummy = Graph::empty(1);
        let (v, t) =
            fixture(RemoteMode::Full { graph: Arc::new(dummy) });
        let nbrs = v.neighbors(3);
        assert_eq!(nbrs.len(), 2); // 2 and 4
        assert_eq!(
            t.structure_bytes(),
            2 * crate::BYTES_PER_EDGE + crate::BYTES_PER_NODE_ID
        );
    }

    #[test]
    fn feature_gather_meters_only_remote_rows() {
        let (mut v, t) = fixture(RemoteMode::None);
        let x = v.gather(&[0, 3, 4]);
        assert_eq!(x.shape(), (3, 2));
        assert_eq!(x.row(1), &[3.0, 1.0]);
        assert_eq!(t.feature_bytes(), 2 * 2 * crate::BYTES_PER_FEATURE);
    }

    #[test]
    fn sparsified_mode_serves_owner_copy() {
        // Sparsified copies: partition 0 = {0,1,2 path}, partition 1 keeps
        // only edge 3-4 (edge 2-3 was "sparsified away").
        let parts = vec![
            Graph::from_edges(5, &[(0, 1), (1, 2)]).unwrap(),
            Graph::from_edges(5, &[(3, 4)]).unwrap(),
        ];
        let owner = vec![0u32, 0, 0, 1, 1];
        let full = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let features =
            FeatureMatrix::from_rows((0..5).map(|i| vec![i as f32]).collect()).unwrap();
        let tracker = CommTracker::new();
        let view = WorkerView::new(
            Arc::new(full),
            Arc::new(vec![true, true, true, false, false]),
            Arc::new(vec![true, true, true, false, false]),
            Arc::new(features),
            RemoteMode::Sparsified { parts: Arc::new(parts), owner: Arc::new(owner) },
            tracker.clone(),
        );
        // Node 3's sparsified neighborhood lost edge 2-3.
        assert_eq!(view.neighbors(3), vec![(4, 1.0)]);
        assert!(tracker.structure_bytes() > 0);
        // has_edge still sees the local copy (full adjacency for 0..2).
        assert!(view.has_edge(2, 3) || !view.has_edge(2, 3)); // no panic
    }

    #[test]
    fn repeated_remote_gather_is_metered_once_per_epoch() {
        let (mut v, t) = fixture(RemoteMode::None);
        let _ = v.gather(&[3, 4]);
        let first = t.feature_bytes();
        assert_eq!(first, 2 * 2 * crate::BYTES_PER_FEATURE);
        // Cached rows are free on re-fetch within the epoch.
        let _ = v.gather(&[3, 4]);
        assert_eq!(t.feature_bytes(), first);
        // A clone of the view shares the cache.
        let mut clone = v.clone();
        let _ = clone.gather(&[4]);
        assert_eq!(t.feature_bytes(), first);
        // The next epoch invalidates the cache: re-fetches are priced again.
        v.begin_epoch(1);
        let _ = v.gather(&[3]);
        assert_eq!(t.feature_bytes(), first + 2 * crate::BYTES_PER_FEATURE);
    }

    #[test]
    fn cache_capacity_bounds_membership() {
        let (v, t) = fixture(RemoteMode::None);
        let mut v = v.with_feature_cache_rows(1);
        let _ = v.gather(&[3, 4]); // 3 cached; 4 over capacity
        let _ = v.gather(&[3, 4]); // 3 free, 4 re-metered
        assert_eq!(t.feature_bytes(), 3 * 2 * crate::BYTES_PER_FEATURE);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (v, t) = fixture(RemoteMode::None);
        let mut v = v.with_feature_cache_rows(0);
        let _ = v.gather(&[3]);
        let _ = v.gather(&[3]);
        assert_eq!(t.feature_bytes(), 2 * 2 * crate::BYTES_PER_FEATURE);
    }

    #[test]
    fn bus_gather_is_bit_identical_and_meters_the_bus_plane() {
        if !splpg_net::shm::shm_available() {
            eprintln!("skipping: no usable /dev/shm on this host");
            return;
        }
        use splpg_net::shm::{identity_hash, segment_name};
        use splpg_net::{SegmentSpec, ShmOwner};

        // Reference: the wire path over the same fixture and node list.
        let (mut wire_view, wire_tracker) = fixture(RemoteMode::None);
        let expect = wire_view.gather(&[0, 3, 4, 3]);

        // Segment mirroring the fixture's 5x2 feature matrix.
        let data: Vec<f32> = (0..5).flat_map(|i| [i as f32, 1.0]).collect();
        let spec = SegmentSpec { rows: 5, dim: 2, identity: identity_hash(&[41]) };
        let name = segment_name("view-bus");
        let _owner = ShmOwner::create(&name, &spec, &data).unwrap();
        let lane = ShmLane::attach(&name, &spec).unwrap();

        let (view, tracker) = fixture(RemoteMode::None);
        let mut view = view.with_feature_bus(lane);
        let got = view.gather(&[0, 3, 4, 3]);

        assert_eq!(got.shape(), expect.shape());
        for i in 0..4 {
            assert_eq!(got.row(i), expect.row(i), "row {i}");
        }
        // Wire path priced rows 3 and 4 once (second 3 was cached)...
        assert_eq!(wire_tracker.feature_bytes(), 2 * 2 * crate::BYTES_PER_FEATURE);
        // ...the bus path moved the same rows without touching the
        // raw-feature or wire planes.
        assert_eq!(tracker.feature_bytes(), 0);
        assert_eq!(tracker.feature_wire_bytes(), 0);
        assert_eq!(tracker.feature_bus_elems(), 2 * 2);
        assert_eq!(tracker.feature_bus_bytes(), 2 * 2 * crate::BYTES_PER_FEATURE);
    }

    #[test]
    fn has_edge_unmetered() {
        let dummy = Graph::empty(1);
        let (v, t) = fixture(RemoteMode::Full { graph: Arc::new(dummy) });
        assert!(v.has_edge(3, 4));
        assert_eq!(t.total_bytes(), 0);
    }
}
