//! Micro-benchmarks of the effective-resistance sparsifier (Table II's
//! primitive): degree-score computation, alias-table construction, and
//! end-to-end sparsification across graph sizes, plus the exact-vs-approx
//! ablation on a small graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use splpg_datasets::{CommunityGraphParams, generate_community_graph};
use splpg_sparsify::{DegreeSparsifier, ExactSparsifier, SparsifyConfig, Sparsifier};

fn graph(nodes: usize, edges: usize) -> splpg_graph::Graph {
    let params = CommunityGraphParams { nodes, edges, ..Default::default() };
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    generate_community_graph(&params, &mut rng).expect("valid params").0
}

fn bench_sparsify_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparsify/degree");
    for (nodes, edges) in [(1_000, 5_000), (5_000, 30_000), (10_000, 60_000)] {
        let g = graph(nodes, edges);
        group.throughput(Throughput::Elements(edges as u64));
        group.bench_with_input(BenchmarkId::from_parameter(edges), &g, |b, g| {
            let sparsifier = DegreeSparsifier::new(SparsifyConfig::with_alpha(0.15));
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            b.iter(|| sparsifier.sparsify(g, &mut rng).expect("sparsify"));
        });
    }
    group.finish();
}

fn bench_scores(c: &mut Criterion) {
    let g = graph(10_000, 60_000);
    c.bench_function("sparsify/degree_scores", |b| {
        b.iter(|| DegreeSparsifier::scores(&g));
    });
}

fn bench_exact_vs_approx(c: &mut Criterion) {
    // The ablation DESIGN.md calls out: the degree approximation (Theorem
    // 2) must be orders of magnitude faster than exact CG resistances.
    let g = graph(200, 800);
    let mut group = c.benchmark_group("sparsify/exact_vs_approx");
    group.sample_size(10);
    group.bench_function("approx", |b| {
        let s = DegreeSparsifier::new(SparsifyConfig::with_alpha(0.15));
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| s.sparsify(&g, &mut rng).expect("sparsify"));
    });
    group.bench_function("exact", |b| {
        let s = ExactSparsifier::new(SparsifyConfig::with_alpha(0.15));
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| s.sparsify(&g, &mut rng).expect("sparsify"));
    });
    group.finish();
}

criterion_group!(benches, bench_sparsify_scaling, bench_scores, bench_exact_vs_approx);
criterion_main!(benches);
