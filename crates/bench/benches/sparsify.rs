//! Micro-benchmarks of the effective-resistance sparsifier (Table II's
//! primitive): degree-score computation, alias-table construction, and
//! end-to-end sparsification across graph sizes, plus the exact-vs-approx
//! ablation on a small graph.

use splpg_bench::timing;
use splpg_datasets::{generate_community_graph, CommunityGraphParams};
use splpg_rng::SeedableRng;
use splpg_sparsify::{DegreeSparsifier, ExactSparsifier, SparsifyConfig, Sparsifier};

fn graph(nodes: usize, edges: usize) -> splpg_graph::Graph {
    let params = CommunityGraphParams { nodes, edges, ..Default::default() };
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(1);
    generate_community_graph(&params, &mut rng).expect("valid params").0
}

fn bench_sparsify_scaling() {
    timing::section("sparsify/degree scaling");
    for (nodes, edges) in [(1_000, 5_000), (5_000, 30_000), (10_000, 60_000)] {
        let g = graph(nodes, edges);
        let sparsifier = DegreeSparsifier::new(SparsifyConfig::with_alpha(0.15));
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(2);
        timing::bench(&format!("degree_sparsify_{edges}e"), || {
            sparsifier.sparsify(&g, &mut rng).expect("sparsify")
        });
    }
}

fn bench_scores() {
    timing::section("sparsify/degree_scores");
    let g = graph(10_000, 60_000);
    timing::bench("degree_scores_60k", || DegreeSparsifier::scores(&g));
}

fn bench_exact_vs_approx() {
    // The ablation DESIGN.md calls out: the degree approximation (Theorem
    // 2) must be orders of magnitude faster than exact CG resistances.
    timing::section("sparsify/exact_vs_approx (200n, 800e)");
    {
        let g = graph(200, 800);
        let s = DegreeSparsifier::new(SparsifyConfig::with_alpha(0.15));
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(3);
        timing::bench("approx", || s.sparsify(&g, &mut rng).expect("sparsify"));
    }
    {
        let g = graph(200, 800);
        let s = ExactSparsifier::new(SparsifyConfig::with_alpha(0.15));
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(3);
        timing::bench("exact", || s.sparsify(&g, &mut rng).expect("sparsify"));
    }
}

fn main() {
    bench_sparsify_scaling();
    bench_scores();
    bench_exact_vs_approx();
}
