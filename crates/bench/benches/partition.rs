//! Micro-benchmarks of the three partitioners on community graphs.

use splpg_bench::timing;
use splpg_datasets::{generate_community_graph, CommunityGraphParams};
use splpg_partition::{MetisLike, Partitioner, RandomTma, SuperTma};
use splpg_rng::SeedableRng;

fn graph(nodes: usize, edges: usize) -> splpg_graph::Graph {
    let params = CommunityGraphParams { nodes, edges, ..Default::default() };
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(4);
    generate_community_graph(&params, &mut rng).expect("valid params").0
}

fn bench_partitioners() {
    timing::section("partition/p8 (5k nodes, 30k edges)");
    let g = graph(5_000, 30_000);
    {
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(5);
        timing::bench("metis_like", || {
            MetisLike::default().partition(&g, 8, &mut rng).expect("partition")
        });
    }
    {
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(5);
        timing::bench("random_tma", || {
            RandomTma.partition(&g, 8, &mut rng).expect("partition")
        });
    }
    {
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(5);
        timing::bench("super_tma", || {
            SuperTma::default().partition(&g, 8, &mut rng).expect("partition")
        });
    }
}

fn bench_metis_scaling() {
    timing::section("partition/metis_scaling (4 parts)");
    for (nodes, edges) in [(1_000, 5_000), (5_000, 30_000), (10_000, 60_000)] {
        let g = graph(nodes, edges);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(6);
        timing::bench(&format!("metis_like_{nodes}n"), || {
            MetisLike::default().partition(&g, 4, &mut rng).expect("partition")
        });
    }
}

fn main() {
    bench_partitioners();
    bench_metis_scaling();
}
