//! Micro-benchmarks of the three partitioners on community graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use splpg_datasets::{generate_community_graph, CommunityGraphParams};
use splpg_partition::{MetisLike, Partitioner, RandomTma, SuperTma};

fn graph(nodes: usize, edges: usize) -> splpg_graph::Graph {
    let params = CommunityGraphParams { nodes, edges, ..Default::default() };
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    generate_community_graph(&params, &mut rng).expect("valid params").0
}

fn bench_partitioners(c: &mut Criterion) {
    let g = graph(5_000, 30_000);
    let mut group = c.benchmark_group("partition/p8");
    group.sample_size(10);
    group.bench_function("metis_like", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        b.iter(|| MetisLike::default().partition(&g, 8, &mut rng).expect("partition"));
    });
    group.bench_function("random_tma", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        b.iter(|| RandomTma::default().partition(&g, 8, &mut rng).expect("partition"));
    });
    group.bench_function("super_tma", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        b.iter(|| SuperTma::default().partition(&g, 8, &mut rng).expect("partition"));
    });
    group.finish();
}

fn bench_metis_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/metis_scaling");
    group.sample_size(10);
    for (nodes, edges) in [(1_000, 5_000), (5_000, 30_000), (10_000, 60_000)] {
        let g = graph(nodes, edges);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &g, |b, g| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(6);
            b.iter(|| MetisLike::default().partition(g, 4, &mut rng).expect("partition"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners, bench_metis_scaling);
criterion_main!(benches);
