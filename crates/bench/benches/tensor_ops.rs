//! Micro-benchmarks of the tensor/autograd primitives that dominate
//! training time: matmul, segment aggregation, and a full
//! forward+backward of one GNN layer.

use splpg_bench::timing;
use splpg_rng::{Rng, SeedableRng};
use splpg_tensor::{Tape, Tensor};

fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(seed);
    Tensor::from_fn(rows, cols, |_, _| rng.gen::<f32>() - 0.5)
}

fn bench_matmul() {
    timing::section("tensor/matmul [n,128]x[128,64]");
    for n in [64usize, 256, 1024] {
        let a = random_tensor(n, 128, 1);
        let b = random_tensor(128, 64, 2);
        timing::bench(&format!("matmul_{n}"), || a.matmul(&b));
    }
}

fn bench_segment_sum() {
    timing::section("tensor/segment_sum 20k rows -> 2k segments");
    let rows = 20_000;
    let segments = 2_000;
    let data = random_tensor(rows, 64, 3);
    let seg_ids: Vec<u32> = (0..rows).map(|i| (i % segments) as u32).collect();
    timing::bench("segment_sum_20k_64", || {
        let mut tape = Tape::new();
        let x = tape.leaf(data.clone());
        let y = tape.segment_sum(x, &seg_ids, segments);
        tape.value(y).clone()
    });
}

fn bench_layer_forward_backward() {
    // A GCN-shaped layer on a 5k-edge block: gather, scale, aggregate,
    // linear, relu, backward.
    timing::section("tensor/layer fwd+bwd (5k edges, 64->32)");
    let num_src = 2_000;
    let num_dst = 500;
    let num_edges = 5_000;
    let feats = random_tensor(num_src, 64, 4);
    let weight = random_tensor(64, 32, 5);
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(6);
    let e_src: Vec<u32> = (0..num_edges).map(|_| rng.gen_range(0..num_src as u32)).collect();
    let e_dst: Vec<u32> = (0..num_edges).map(|_| rng.gen_range(0..num_dst as u32)).collect();
    let norm: Vec<f32> = (0..num_edges).map(|_| rng.gen_range(0.1f32..1.0)).collect();
    timing::bench("gcn_layer_fwd_bwd", || {
        let mut tape = Tape::new();
        let h = tape.leaf(feats.clone());
        let w = tape.leaf(weight.clone());
        let msgs = tape.gather_rows(h, &e_src);
        let scaled = tape.scale_rows(msgs, &norm);
        let agg = tape.segment_sum(scaled, &e_dst, num_dst);
        let z = tape.matmul(agg, w);
        let y = tape.relu(z);
        let loss = tape.mean_all(y);
        tape.backward(loss)
    });
}

fn main() {
    bench_matmul();
    bench_segment_sum();
    bench_layer_forward_backward();
}
