//! Micro-benchmarks of the tensor/autograd primitives that dominate
//! training time: matmul, segment aggregation, and a full
//! forward+backward of one GNN layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use splpg_tensor::{Tape, Tensor};

fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::from_fn(rows, cols, |_, _| rng.gen::<f32>() - 0.5)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor/matmul");
    for n in [64usize, 256, 1024] {
        let a = random_tensor(n, 128, 1);
        let b = random_tensor(128, 64, 2);
        group.throughput(Throughput::Elements((n * 128 * 64) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bench, (a, b)| {
            bench.iter(|| a.matmul(b));
        });
    }
    group.finish();
}

fn bench_segment_sum(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let x = random_tensor(20_000, 64, 4);
    let seg: Vec<u32> = (0..20_000).map(|_| rng.gen_range(0..2_000)).collect();
    c.bench_function("tensor/segment_sum_20k_x64", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let v = tape.leaf(x.clone());
            tape.segment_sum(v, &seg, 2_000)
        });
    });
}

fn bench_layer_forward_backward(c: &mut Criterion) {
    // One GCN-like layer on a 5k-edge block, forward + backward.
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let h = random_tensor(2_000, 64, 6);
    let w = random_tensor(64, 64, 7);
    let e_src: Vec<u32> = (0..5_000).map(|_| rng.gen_range(0..2_000)).collect();
    let e_dst: Vec<u32> = (0..5_000).map(|_| rng.gen_range(0..500)).collect();
    let norms: Vec<f32> = (0..5_000).map(|_| rng.gen::<f32>()).collect();
    c.bench_function("tensor/gcn_layer_fwd_bwd", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let hv = tape.leaf(h.clone());
            let wv = tape.leaf(w.clone());
            let msgs = tape.gather_rows(hv, &e_src);
            let scaled = tape.scale_rows(msgs, &norms);
            let agg = tape.segment_sum(scaled, &e_dst, 500);
            let out = tape.matmul(agg, wv);
            let act = tape.relu(out);
            let loss = tape.mean_all(act);
            tape.backward(loss)
        });
    });
}

criterion_group!(benches, bench_matmul, bench_segment_sum, bench_layer_forward_backward);
criterion_main!(benches);
