//! Micro-benchmarks of mini-batch machinery: neighbor sampling (block
//! construction), negative sampling, and the alias table.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use splpg_datasets::{generate_community_graph, CommunityGraphParams};
use splpg_gnn::{FullGraphAccess, NeighborSampler, PerSourceNegativeSampler};
use splpg_sparsify::AliasTable;

fn graph() -> splpg_graph::Graph {
    let params =
        CommunityGraphParams { nodes: 10_000, edges: 60_000, ..Default::default() };
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    generate_community_graph(&params, &mut rng).expect("valid params").0
}

fn bench_neighbor_sampler(c: &mut Criterion) {
    let g = graph();
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let seeds: Vec<u32> = (0..512).map(|_| rng.gen_range(0..10_000)).collect();
    let mut group = c.benchmark_group("sampling/blocks");
    group.throughput(Throughput::Elements(seeds.len() as u64));
    group.bench_function("fanout_25_10_5", |b| {
        let sampler = NeighborSampler::paper_sage();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        b.iter(|| {
            let mut access = FullGraphAccess::new(&g);
            sampler.sample(&mut access, &seeds, &mut rng)
        });
    });
    group.bench_function("full_3layer", |b| {
        let sampler = NeighborSampler::full(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        b.iter(|| {
            let mut access = FullGraphAccess::new(&g);
            sampler.sample(&mut access, &seeds, &mut rng)
        });
    });
    group.finish();
}

fn bench_negative_sampling(c: &mut Criterion) {
    let g = graph();
    let positives = g.edges()[..1024].to_vec();
    c.bench_function("sampling/per_source_negatives_1024", |b| {
        let sampler = PerSourceNegativeSampler::global(g.num_nodes());
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        b.iter(|| {
            let mut access = FullGraphAccess::new(&g);
            sampler.sample_for_edges(&mut access, &positives, &mut rng).expect("sample")
        });
    });
}

fn bench_alias_table(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let weights: Vec<f64> = (0..100_000).map(|_| rng.gen::<f64>() + 0.01).collect();
    c.bench_function("sampling/alias_build_100k", |b| {
        b.iter(|| AliasTable::new(&weights).expect("valid weights"));
    });
    let table = AliasTable::new(&weights).expect("valid weights");
    c.bench_function("sampling/alias_draw_10k", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(table.sample(&mut rng));
            }
            acc
        });
    });
}

criterion_group!(benches, bench_neighbor_sampler, bench_negative_sampling, bench_alias_table);
criterion_main!(benches);
