//! Micro-benchmarks of mini-batch machinery: neighbor sampling (block
//! construction), negative sampling, and the alias table.

use splpg_bench::timing;
use splpg_datasets::{generate_community_graph, CommunityGraphParams};
use splpg_gnn::{FullGraphAccess, NeighborSampler, PerSourceNegativeSampler};
use splpg_rng::{Rng, SeedableRng};
use splpg_sparsify::AliasTable;

fn graph() -> splpg_graph::Graph {
    let params =
        CommunityGraphParams { nodes: 10_000, edges: 60_000, ..Default::default() };
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(7);
    generate_community_graph(&params, &mut rng).expect("valid params").0
}

fn bench_neighbor_sampler() {
    timing::section("sampling/blocks (512 seeds, 60k edges)");
    let g = graph();
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(8);
    let seeds: Vec<u32> = (0..512).map(|_| rng.gen_range(0..10_000)).collect();
    {
        let sampler = NeighborSampler::paper_sage();
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(9);
        timing::bench("fanout_25_10_5", || {
            let access = FullGraphAccess::new(&g);
            sampler.sample(&access, &seeds, &mut rng)
        });
    }
    {
        let sampler = NeighborSampler::full(3);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(9);
        timing::bench("full_3layer", || {
            let access = FullGraphAccess::new(&g);
            sampler.sample(&access, &seeds, &mut rng)
        });
    }
}

fn bench_negative_sampling() {
    timing::section("sampling/negatives");
    let g = graph();
    let positives = g.edges()[..1024].to_vec();
    let sampler = PerSourceNegativeSampler::global(g.num_nodes());
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(10);
    timing::bench("per_source_negatives_1024", || {
        let access = FullGraphAccess::new(&g);
        sampler.sample_for_edges(&access, &positives, &mut rng).expect("sample")
    });
}

fn bench_alias_table() {
    timing::section("sampling/alias table");
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(11);
    let weights: Vec<f64> = (0..100_000).map(|_| rng.gen::<f64>() + 0.01).collect();
    timing::bench("alias_build_100k", || AliasTable::new(&weights).expect("valid weights"));
    let table = AliasTable::new(&weights).expect("valid weights");
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(12);
    timing::bench("alias_draw_10k", || {
        let mut acc = 0usize;
        for _ in 0..10_000 {
            acc = acc.wrapping_add(table.sample(&mut rng));
        }
        acc
    });
}

fn main() {
    bench_neighbor_sampler();
    bench_negative_sampling();
    bench_alias_table();
}
