//! Minimal in-tree timing harness.
//!
//! Replaces the criterion dev-dependency so benches build offline. Each
//! bench target (`benches/*.rs`, `harness = false`) is a plain binary
//! that calls [`bench`] per case; [`bench`] auto-calibrates an iteration
//! count, times a few repetitions, and reports the best ns/iter.
//!
//! `SPLPG_BENCH_MS` overrides the per-repetition time budget
//! (milliseconds, default 100) — set it low (e.g. `5`) to smoke-test
//! that benches run without waiting for stable numbers.

use std::hint::black_box;
use std::time::Instant;

/// Timed repetitions per measurement; the best is reported.
const REPS: usize = 3;

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Iterations per timed repetition.
    pub iters: u64,
    /// Best-of-repetitions nanoseconds per iteration.
    pub ns_per_iter: f64,
}

fn target_rep_ns() -> u128 {
    let ms: u128 = std::env::var("SPLPG_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    ms.max(1) * 1_000_000
}

/// Times `f` (auto-calibrated iteration count, best of [`REPS`]
/// repetitions) and returns `(iters, ns_per_iter)`.
pub fn time_fn<T, F: FnMut() -> T>(mut f: F) -> (u64, f64) {
    let target = target_rep_ns();
    // Calibrate: double the batch until it costs >= a tenth of the
    // budget, then scale to the budget.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= target / 10 || iters >= (1 << 24) {
            if let Some(scaled) = (u128::from(iters) * target).checked_div(elapsed) {
                iters = (scaled.max(1) as u64).min(1 << 24);
            }
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    (iters, best)
}

/// Runs one named benchmark and prints its row.
pub fn bench<T, F: FnMut() -> T>(name: &str, f: F) -> Measurement {
    let (iters, ns) = time_fn(f);
    println!("{name:<44} {:>14}  ({iters} iters/rep)", fmt_ns(ns));
    Measurement { name: name.to_string(), iters, ns_per_iter: ns }
}

/// Prints a section heading for a group of related benches.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

/// Formats nanoseconds-per-iteration with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_fn_returns_positive_measurement() {
        std::env::set_var("SPLPG_BENCH_MS", "1");
        let mut acc = 0u64;
        let (iters, ns) = time_fn(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(iters >= 1);
        assert!(ns >= 0.0);
        assert!(ns.is_finite());
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("us"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(12_000_000_000.0).contains("s/iter"));
    }
}
