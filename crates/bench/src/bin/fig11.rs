//! Figure 11: accuracy of GNNs trained by SpLPG vs centralized training,
//! GCN and GraphSAGE, p in {4, 8, 16}.
//!
//! Expected shape: SpLPG recovers most of the centralized accuracy; GCN
//! on the small graphs falls a bit short (the paper observes the same,
//! since GCN wants complete neighborhoods and small graphs feel the
//! sparsifier's information loss most).

use splpg::prelude::*;
use splpg_bench::{print_header, print_row, ExpOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    for model in [ModelKind::Gcn, ModelKind::GraphSage] {
        print_header(
            &format!("Figure 11 — SpLPG vs centralized accuracy ({model}, {})", opts.hits_label()),
            &["dataset", "Centralized", "SpLPG p=4", "SpLPG p=8", "SpLPG p=16"],
        );
        for spec in opts.accuracy_specs() {
            let data = opts.generate(&spec)?;
            let central = opts
                .run_strategy(&data, Strategy::Centralized, model, 1, 0.15, opts.epochs)?
                .test_hits;
            let mut row = vec![data.name.clone(), format!("{central:.3}")];
            for p in opts.partition_counts() {
                let splpg = opts
                    .run_strategy(&data, Strategy::SpLpg, model, p, 0.15, opts.epochs)?
                    .test_hits;
                row.push(format!("{splpg:.3}"));
            }
            // Pad when --quick restricts the p grid.
            while row.len() < 5 {
                row.push("-".to_string());
            }
            print_row(&row);
        }
    }
    println!("\nshape check: SpLPG columns approach Centralized; GraphSAGE > GCN mostly.");
    Ok(())
}
