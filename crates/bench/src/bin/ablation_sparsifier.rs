//! Ablation: SpLPG with different sparsifiers for the shared remote
//! copies (beyond the paper — quantifies the value of effective-resistance
//! importance sampling against uniform and connectivity-preserving
//! baselines at the same edge budget).

use splpg::prelude::*;
use splpg_bench::{print_header, print_row, ExpOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let data = opts.generate(&DatasetSpec::cora())?;
    let kinds = [
        ("effective-resistance (paper)", SparsifierKind::Degree),
        ("uniform", SparsifierKind::Uniform),
        ("spanning-forest", SparsifierKind::SpanningForest),
        ("exact ER (per-node engine)", SparsifierKind::Exact),
        ("JL sketch (64 proj)", SparsifierKind::Jl),
    ];
    print_header(
        &format!(
            "Ablation — sparsifier choice inside SpLPG ({}, GraphSAGE, p = 4, alpha = 0.15)",
            data.name
        ),
        &["sparsifier", &opts.hits_label(), "comm MB/epoch"],
    );
    for (label, kind) in kinds {
        let mut builder = SpLpg::builder();
        builder
            .workers(4)
            .strategy(Strategy::SpLpg)
            .sparsifier(kind)
            .sparsification_alpha(0.15)
            .epochs(opts.epochs)
            .hidden(opts.hidden)
            .layers(opts.layers)
            .fanouts(vec![Some(10), Some(5)])
            .hits_k(opts.hits_for(&data))
            .eval_every(3)
            .seed(opts.seed);
        let out = builder.build().run(ModelKind::GraphSage, &data)?;
        print_row(&[
            label.to_string(),
            format!("{:.3}", out.test_hits),
            format!("{:.3}", out.comm.mean_epoch_bytes() as f64 / 1e6),
        ]);
    }
    println!(
        "\nshape check: effective-resistance sampling should match or beat the\n\
         baselines at equal budget (it keeps structurally important edges)."
    );
    Ok(())
}
