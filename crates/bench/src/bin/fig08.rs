//! Figure 8: improvement of communication cost achieved by SpLPG over the
//! complete-data-sharing baselines (PSGD-PA+, RandomTMA+, SuperTMA+) for
//! GCN (a–c) and GraphSAGE (d–f), p in {4, 8, 16}.
//!
//! Expected shape: savings of roughly 60–80% everywhere.

use splpg::prelude::*;
use splpg_bench::{pct_saving, print_header, print_row, ExpOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let baselines =
        [Strategy::PsgdPaPlus, Strategy::RandomTmaPlus, Strategy::SuperTmaPlus];
    for model in [ModelKind::Gcn, ModelKind::GraphSage] {
        print_header(
            &format!("Figure 8 — SpLPG communication saving vs '+' baselines ({model})"),
            &["dataset", "p", "vs PSGD-PA+ %", "vs RandomTMA+ %", "vs SuperTMA+ %"],
        );
        for spec in opts.comm_specs() {
            let data = opts.generate(&spec)?;
            for p in opts.partition_counts() {
                let splpg = opts
                    .run_strategy(&data, Strategy::SpLpg, model, p, 0.15, opts.comm_epochs)?
                    .comm
                    .mean_epoch_bytes() as f64;
                let mut row = vec![data.name.clone(), p.to_string()];
                for baseline in baselines {
                    let base = opts
                        .run_strategy(&data, baseline, model, p, 0.15, opts.comm_epochs)?
                        .comm
                        .mean_epoch_bytes() as f64;
                    row.push(format!("{:.1}", pct_saving(base, splpg)));
                }
                print_row(&row);
            }
        }
    }
    println!("\nshape check: savings in the 60-80% band across datasets and p.");
    Ok(())
}
