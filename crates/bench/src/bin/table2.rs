//! Table II: running time of the effective-resistance-based graph
//! sparsification of SpLPG, in seconds, for every dataset and
//! p in {4, 8, 16}.
//!
//! Expected shape: seconds for the small graphs, growing roughly linearly
//! with edge count; nearly flat in p (sparsification work is O(|E|)
//! total regardless of the partition count).

use std::sync::Arc;
use std::time::Instant;

use splpg::dist::ClusterSetup;
use splpg::prelude::*;
use splpg_bench::{print_header, print_row, ExpOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let specs: Vec<DatasetSpec> =
        if opts.quick { vec![DatasetSpec::cora()] } else { DatasetSpec::table1() };
    print_header(
        "Table II — sparsification running time (seconds, alpha = 0.15)",
        &["dataset", "nodes", "edges", "p=4", "p=8", "p=16"],
    );
    for spec in specs {
        let data = opts.generate(&spec)?;
        let graph = Arc::new(data.train_graph());
        let features = Arc::new(data.features.clone());
        let mut row = vec![
            data.name.clone(),
            graph.num_nodes().to_string(),
            graph.num_edges().to_string(),
        ];
        for p in [4usize, 8, 16] {
            if opts.quick && p > 4 {
                row.push("-".to_string());
                continue;
            }
            // Time the full SpLPG preprocessing path (partition subgraph
            // construction is excluded; Table II times sparsification).
            let t = Instant::now();
            let setup = ClusterSetup::build(
                &graph,
                &features,
                Strategy::SpLpg.spec(),
                p,
                0.15,
                opts.seed,
            )?;
            let _ = t.elapsed();
            row.push(format!("{:.3}", setup.sparsify_time.as_secs_f64()));
        }
        print_row(&row);
    }
    println!(
        "\nshape check: time grows with |E| (PPA >> Collab >> rest) and is\n\
         nearly independent of p, matching Table II."
    );
    Ok(())
}
