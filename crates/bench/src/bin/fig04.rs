//! Figure 4: accuracy AND communication cost of the state-of-the-art
//! methods with the complete data-sharing strategy (PSGD-PA+, RandomTMA+,
//! SuperTMA+), p = 4, GraphSAGE.
//!
//! Expected shape: the `+` variants recover centralized-level accuracy,
//! but their per-epoch transfer volume is very large.

use splpg::prelude::*;
use splpg_bench::{print_header, print_row, ExpOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let strategies =
        [Strategy::Centralized, Strategy::PsgdPaPlus, Strategy::RandomTmaPlus, Strategy::SuperTmaPlus];

    print_header(
        &format!(
            "Figure 4a — accuracy with complete data sharing (GraphSAGE, p = 4, {})",
            opts.hits_label()
        ),
        &["dataset", "Centralized", "PSGD-PA+", "RandomTMA+", "SuperTMA+"],
    );
    let mut comm_rows: Vec<Vec<String>> = Vec::new();
    for spec in opts.accuracy_specs() {
        let data = opts.generate(&spec)?;
        let mut acc_row = vec![data.name.clone()];
        let mut comm_row = vec![data.name.clone()];
        for strategy in strategies {
            let out =
                opts.run_strategy(&data, strategy, ModelKind::GraphSage, 4, 0.15, opts.epochs)?;
            acc_row.push(format!("{:.3}", out.test_hits));
            comm_row.push(format!("{:.2}", out.comm.mean_epoch_bytes() as f64 / 1e6));
        }
        print_row(&acc_row);
        comm_rows.push(comm_row);
    }

    print_header(
        "Figure 4b — communication cost (MB transferred master->workers per epoch)",
        &["dataset", "Centralized", "PSGD-PA+", "RandomTMA+", "SuperTMA+"],
    );
    for row in comm_rows {
        print_row(&row);
    }
    println!(
        "\nshape check: '+' accuracies track Centralized; their comm columns are\n\
         orders of magnitude above Centralized's zero."
    );
    Ok(())
}
