//! Shared-memory feature bus ablation: local-bus vs wire feature traffic
//! for co-located workers, reconciled against the `CommTracker` meters.
//! Writes `BENCH_shm.json` to the repo root.
//!
//! Four rows train the same 2-worker SpLPG cluster:
//!
//! 1. `wire` — the TCP-era baseline: every remote feature row crosses
//!    the (in-process) wire and is priced on the raw/wire planes;
//! 2. `bus` — co-located workers read remote rows zero-copy out of the
//!    master-published segment; the rows move to the local-bus plane;
//! 3. `bus/torn` — the segment is deliberately corrupted before attach:
//!    checksum validation fails, the run falls back to the wire path and
//!    records a typed fault in `NetReport`;
//! 4. `bus/tcp` — the bus across real worker processes on loopback TCP,
//!    segment name advertised through the `SPLPG_PROC_*` env handoff.
//!
//! Gates: the bus row ships ≥10x fewer feature wire bytes than the
//! baseline while moving the identical row volume over the bus plane,
//! every run is bit-identical to the baseline, and the ledger-carried
//! bus bytes reconcile exactly with the `CommTracker` meters.
//!
//! ```sh
//! cargo run -p splpg-bench --bin shm_bus --release
//! ```
//!
//! `SPLPG_BENCH_MS=5` (or lower) skips the multi-process TCP row for
//! smoke runs. Hosts without usable POSIX shared memory skip the bus
//! rows entirely (clean SKIP, exit 0).

use std::fmt::Write as _;

use splpg::net::shm::shm_available;
use splpg::prelude::*;

struct Row {
    label: &'static str,
    transport: &'static str,
    feature_raw: u64,
    feature_wire: u64,
    feature_bus: u64,
    structure_wire: u64,
    test_hits: f64,
    fault: Option<String>,
}

impl Row {
    fn of(label: &'static str, transport: &'static str, out: &DistOutcome) -> Row {
        Row {
            label,
            transport,
            feature_raw: out.comm.total_feature_bytes,
            feature_wire: out.comm.total_feature_wire_bytes,
            feature_bus: out.comm.total_feature_bus_bytes,
            structure_wire: out.comm.total_structure_wire_bytes,
            test_hits: out.test_hits,
            fault: out.net.shm_fault.clone(),
        }
    }
}

fn builder(bus: ShmBusMode) -> SpLpg {
    let mut b = SpLpg::builder();
    b.workers(2)
        .strategy(Strategy::SpLpg)
        .sync(SyncMethod::ModelAveraging)
        .epochs(2)
        .hidden(8)
        .layers(2)
        .fanouts(vec![Some(5), Some(5)])
        .hits_k(10)
        .seed(17)
        .feature_bus(bus);
    b.build()
}

/// 64-dimensional features so the feature plane dominates the structure
/// plane, as on the paper's datasets.
fn dataset() -> Result<Dataset, String> {
    DatasetSpec::citeseer().generate(Scale::new(0.05, 64), 3).map_err(|e| e.to_string())
}

/// Parses the bus mode a spawned TCP worker child must run from the
/// `child_args` the master passed through (`--bus=on`).
fn bus_from_args() -> ShmBusMode {
    for arg in std::env::args() {
        if arg == "--bus=on" {
            return ShmBusMode::On;
        }
    }
    ShmBusMode::Off
}

/// The two accounting paths — transport-carried fetch ledgers and the
/// worker-side `CommTracker` meters — must tell one story on both the
/// wire planes and the bus plane.
fn reconcile(label: &str, out: &DistOutcome) {
    assert_eq!(
        out.net.data_bytes,
        out.comm.total_bytes(),
        "{label}: wire ledgers disagree with the CommTracker meters"
    );
    assert_eq!(
        out.net.data_bus_bytes, out.comm.total_feature_bus_bytes,
        "{label}: ledger-carried bus bytes disagree with the CommTracker bus meters"
    );
}

fn run_mode(data: &Dataset, label: &'static str, bus: ShmBusMode) -> Result<Row, Box<dyn std::error::Error>> {
    let out = builder(bus).run(ModelKind::GraphSage, data)?;
    reconcile(label, &out);
    Ok(Row::of(label, "channel", &out))
}

fn gate(base: &Row, bus: &Row, torn: &Row) {
    // Fault-free bus run: no fault, bit-identical arithmetic, and the
    // baseline's entire feature volume moved off the wire onto the bus.
    assert!(bus.fault.is_none(), "bus: unexpected fault {:?}", bus.fault);
    assert_eq!(bus.test_hits.to_bits(), base.test_hits.to_bits(), "bus: arithmetic changed");
    assert_eq!(bus.feature_bus, base.feature_raw, "bus: row volume changed planes unevenly");
    assert!(base.feature_wire > 0, "baseline moved no features");
    assert!(
        bus.feature_wire * 10 <= base.feature_wire,
        "bus feature wire bytes {} not >=10x below baseline {}",
        bus.feature_wire,
        base.feature_wire
    );
    // Structure still crosses the wire identically.
    assert_eq!(bus.structure_wire, base.structure_wire, "bus: structure plane changed");
    // Torn segment: typed fault, graceful wire fallback, same bits.
    let fault = torn.fault.as_deref().expect("torn: no fault recorded");
    assert!(fault.contains("checksum"), "torn: unexpected fault {fault}");
    assert_eq!(torn.test_hits.to_bits(), base.test_hits.to_bits(), "torn: arithmetic changed");
    assert_eq!(torn.feature_bus, 0, "torn: bytes metered on a dead bus");
    assert_eq!(torn.feature_wire, base.feature_wire, "torn: fallback missed the wire path");
}

fn write_json(rows: &[Row]) {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let fault = r.fault.as_deref().unwrap_or("");
        let _ = writeln!(
            out,
            "  {{\"mode\": \"{}\", \"transport\": \"{}\", \"feature_raw\": {}, \
             \"feature_wire\": {}, \"feature_bus\": {}, \"structure_wire\": {}, \
             \"test_hits\": {:.4}, \"fault\": \"{}\"}}{comma}",
            r.label, r.transport, r.feature_raw, r.feature_wire, r.feature_bus,
            r.structure_wire, r.test_hits, fault,
        );
    }
    out.push_str("]\n");
    let path = repo_root().join("BENCH_shm.json");
    std::fs::write(&path, out).expect("write BENCH_shm.json");
    println!("\nwrote {}", path.display());
}

fn repo_root() -> std::path::PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../.."),
        Err(_) => std::path::PathBuf::from("."),
    }
}

fn smoke() -> bool {
    std::env::var("SPLPG_BENCH_MS").ok().and_then(|v| v.parse::<u64>().ok()).is_some_and(|ms| ms <= 5)
}

fn print_row(r: &Row) {
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>12} {:>8.4} {}",
        r.label,
        r.transport,
        r.feature_wire,
        r.feature_bus,
        r.structure_wire,
        r.test_hits,
        r.fault.as_deref().map_or(String::new(), |f| format!("fault: {f}")),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Spawned worker child of the bus/tcp row? Serve under the bus mode
    // the master handed us via child_args, then exit.
    let served = tcp_worker_entry(|workers| {
        let data = dataset().map_err(splpg::dist::DistError::Process)?;
        let s = builder(bus_from_args());
        let trainer = DistTrainer::new(
            DistConfig { num_workers: workers, ..s.dist_config().clone() },
            s.train_config().clone(),
        );
        Ok((trainer, ModelKind::GraphSage, data))
    })?;
    if served {
        return Ok(());
    }

    if !shm_available() {
        println!("{:>10} SKIP: no usable POSIX shared memory on this host", "shm_bus");
        return Ok(());
    }

    let data = dataset()?;
    println!(
        "dataset: {} ({} nodes, {} edges, dim {}); 2 workers, 2 epochs, GraphSage\n",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges(),
        data.features.dim()
    );
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "mode", "via", "feat wire B", "feat bus B", "struct wire", "hits@10"
    );

    let base = run_mode(&data, "wire", ShmBusMode::Off)?;
    let bus = run_mode(&data, "bus", ShmBusMode::On)?;
    let torn = run_mode(&data, "bus/torn", ShmBusMode::CorruptForTest)?;
    for r in [&base, &bus, &torn] {
        print_row(r);
    }
    gate(&base, &bus, &torn);
    let mut rows = vec![base, bus, torn];

    // The bus across real worker processes on loopback TCP: each child
    // attaches the segment the master advertised through the
    // SPLPG_PROC_SHM env handoff and must reproduce the in-process bus
    // run's meters and bits exactly.
    if !smoke() && std::net::TcpListener::bind(("127.0.0.1", 0)).is_ok() {
        let s = builder(ShmBusMode::On);
        let trainer = DistTrainer::new(s.dist_config().clone(), s.train_config().clone());
        let out =
            trainer.run_multiprocess(ModelKind::GraphSage, &data, &["--bus=on".to_string()])?;
        reconcile("bus/tcp", &out);
        let row = Row::of("bus/tcp", "tcp", &out);
        let channel = &rows[1];
        assert!(row.fault.is_none(), "bus/tcp: unexpected fault {:?}", row.fault);
        assert_eq!(row.test_hits.to_bits(), channel.test_hits.to_bits());
        assert_eq!(row.feature_bus, channel.feature_bus);
        assert_eq!(row.feature_wire, channel.feature_wire);
        print_row(&row);
        rows.push(row);
    } else {
        println!("{:>10} SKIP: smoke run or loopback sockets unavailable", "bus/tcp");
    }

    write_json(&rows);
    println!(
        "\nall gates passed: the bus run moves the baseline's entire feature\n\
         volume off the wire (>=10x fewer feature wire bytes), bit-identically;\n\
         a torn segment degrades to the wire path with a typed fault; and the\n\
         ledgers reconcile with the CommTracker meters on every plane."
    );
    Ok(())
}
