//! Figure 10: improvement of accuracy achieved by SpLPG over the vanilla
//! baselines (PSGD-PA, RandomTMA, SuperTMA) for GCN (a–c) and GraphSAGE
//! (d–f), p in {4, 8, 16}.
//!
//! Expected shape: large positive improvements (up to ~400% in the
//! paper), growing with p as local-only training degrades.

use splpg::prelude::*;
use splpg_bench::{pct_improvement, print_header, print_row, ExpOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let baselines = [Strategy::PsgdPa, Strategy::RandomTma, Strategy::SuperTma];
    for model in [ModelKind::Gcn, ModelKind::GraphSage] {
        print_header(
            &format!("Figure 10 — SpLPG accuracy improvement vs vanilla baselines ({model})"),
            &["dataset", "p", "SpLPG", "vs PSGD-PA %", "vs RandomTMA %", "vs SuperTMA %"],
        );
        for spec in opts.accuracy_specs() {
            let data = opts.generate(&spec)?;
            for p in opts.partition_counts() {
                let splpg = opts
                    .run_strategy(&data, Strategy::SpLpg, model, p, 0.15, opts.epochs)?
                    .test_hits;
                let mut row =
                    vec![data.name.clone(), p.to_string(), format!("{splpg:.3}")];
                for baseline in baselines {
                    let base = opts
                        .run_strategy(&data, baseline, model, p, 0.15, opts.epochs)?
                        .test_hits;
                    row.push(format!("{:+.0}", pct_improvement(base, splpg)));
                }
                print_row(&row);
            }
        }
    }
    println!("\nshape check: all improvement columns strongly positive, larger at high p.");
    Ok(())
}
