//! Runs the complete experiment suite (every figure and table) in
//! sequence by re-invoking the per-experiment binaries' logic is not
//! possible across processes, so this binary simply shells out to each
//! sibling binary with the same flags.
//!
//! ```sh
//! cargo run -p splpg-bench --bin repro --release -- --quick
//! ```

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("exe directory");
    let experiments = [
        "fig03", "fig04", "fig05", "fig06", "fig08", "fig09", "fig10", "fig11", "fig12",
        "fig13", "fig14", "table2", "table3", "ablation_sparsifier",
    ];
    let mut failures = Vec::new();
    for exp in experiments {
        println!("\n==================== {exp} ====================");
        let status = Command::new(dir.join(exp)).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failures.push(exp);
            }
            Err(e) => {
                eprintln!("{exp} failed to launch: {e} (build with `cargo build -p splpg-bench --release` first)");
                failures.push(exp);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
