//! Figure 14: convergence of different GNN models (GCN, GraphSAGE, GAT,
//! GATv2) trained by SpLPG vs the baselines on Cora (a–d) and Pubmed
//! (e–h), p = 4 — validation accuracy per epoch.
//!
//! Expected shape: SpLPG converges to near-centralized accuracy for every
//! architecture; PSGD-PA plateaus well below.

use splpg::prelude::*;
use splpg_bench::{print_header, print_row, ExpOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let specs: Vec<DatasetSpec> = if opts.quick || opts.datasets < 2 {
        vec![DatasetSpec::cora()]
    } else {
        vec![DatasetSpec::cora(), DatasetSpec::pubmed()]
    };
    let strategies = [Strategy::Centralized, Strategy::PsgdPa, Strategy::SpLpg];
    let models: &[ModelKind] = if opts.quick {
        &[ModelKind::GraphSage]
    } else {
        &[ModelKind::Gcn, ModelKind::GraphSage, ModelKind::Gat, ModelKind::GatV2]
    };
    for spec in &specs {
        let data = opts.generate(spec)?;
        for &model in models {
            print_header(
                &format!(
                    "Figure 14 — convergence on {} ({model}, p = 4): valid {} per epoch",
                    data.name, opts.hits_label()
                ),
                &["strategy", "curve (epoch: hits)", "final test"],
            );
            for strategy in strategies {
                let out =
                    opts.run_strategy(&data, strategy, model, 4, 0.15, opts.epochs)?;
                let curve: Vec<String> = out
                    .epochs
                    .iter()
                    .filter_map(|e| e.valid_hits.map(|h| (e.epoch, h)))
                    .step_by((out.epochs.len() / 8).max(1))
                    .map(|(e, h)| format!("{e}:{h:.2}"))
                    .collect();
                print_row(&[
                    strategy.name().to_string(),
                    curve.join(" "),
                    format!("{:.3}", out.test_hits),
                ]);
            }
        }
    }
    println!("\nshape check: SpLPG's curve tracks Centralized; PSGD-PA flattens early.");
    Ok(())
}
