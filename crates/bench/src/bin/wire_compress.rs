//! Wire compression & quantization ablation: bytes-per-epoch and Hits@K
//! across codec × α × quantization mode, reconciled against the
//! socket-carried fetch ledgers. Writes `BENCH_wire.json` to the repo
//! root.
//!
//! Every row trains the same 2-worker SpLPG cluster under a different
//! [`CodecConfig`] and cross-checks three invariants:
//!
//! 1. on-wire bytes never exceed raw bytes, in any mode;
//! 2. the uncompressed mode prices wire bytes identically to the raw
//!    byte model (bit-compatible with the pre-compression ledgers);
//! 3. the cluster run's communication report equals the sequential
//!    reference's, codec by codec — the meters and the wire agree.
//!
//! The compression gates mirror the paper-scale targets: ≥2x on the
//! structure stream under delta+varint packing and ≥3.5x on feature
//! payloads under int8 row quantization (64-dim rows: 256 raw bytes vs
//! an 8-byte header + 64 codes).
//!
//! ```sh
//! cargo run -p splpg-bench --bin wire_compress --release
//! ```
//!
//! `SPLPG_BENCH_MS=5` (or lower) skips the multi-process TCP row for
//! smoke runs.

use std::fmt::Write as _;

use splpg::prelude::*;

const BASE_ALPHA: f64 = 0.10;

struct Row {
    label: String,
    structure: StructCodec,
    features: FeatCodec,
    alpha: f64,
    transport: &'static str,
    epochs: usize,
    structure_raw: u64,
    structure_wire: u64,
    feature_raw: u64,
    feature_wire: u64,
    test_hits: f64,
    hits_delta: f64,
}

impl Row {
    fn raw_per_epoch(&self) -> u64 {
        (self.structure_raw + self.feature_raw) / self.epochs.max(1) as u64
    }

    fn wire_per_epoch(&self) -> u64 {
        (self.structure_wire + self.feature_wire) / self.epochs.max(1) as u64
    }

    fn structure_ratio(&self) -> f64 {
        ratio(self.structure_raw, self.structure_wire)
    }

    fn feature_ratio(&self) -> f64 {
        ratio(self.feature_raw, self.feature_wire)
    }
}

fn ratio(raw: u64, wire: u64) -> f64 {
    if wire == 0 {
        1.0
    } else {
        raw as f64 / wire as f64
    }
}

fn codec_label(structure: StructCodec, features: FeatCodec) -> String {
    let s = match structure {
        StructCodec::None => "none",
        StructCodec::Varint => "varint",
        StructCodec::Rle => "rle",
    };
    let f = match features {
        FeatCodec::F32 => "f32",
        FeatCodec::F16 => "f16",
        FeatCodec::Int8 => "int8",
    };
    format!("{s}/{f}")
}

/// 64-dimensional features: the int8 row format (8-byte header + 1 byte
/// per element) compresses 4·64 = 256 raw bytes to 72, a 3.56x ratio.
fn dataset() -> Result<Dataset, String> {
    DatasetSpec::citeseer().generate(Scale::new(0.05, 64), 3).map_err(|e| e.to_string())
}

fn builder(codec: CodecConfig, alpha: f64) -> SpLpg {
    SpLpg::builder()
        .workers(2)
        .strategy(Strategy::SpLpg)
        .sparsification_alpha(alpha)
        .sync(SyncMethod::ModelAveraging)
        .epochs(2)
        .hidden(8)
        .layers(2)
        .fanouts(vec![Some(5), Some(5)])
        .hits_k(10)
        .seed(17)
        .wire_codec(codec)
        .build()
}

/// Parses the codec a spawned TCP worker child must speak from the
/// `child_args` the master passed through (`--codec=<structure>/<features>`).
fn codec_from_args() -> CodecConfig {
    for arg in std::env::args() {
        let Some(label) = arg.strip_prefix("--codec=") else { continue };
        let structure = match label.split('/').next() {
            Some("varint") => StructCodec::Varint,
            Some("rle") => StructCodec::Rle,
            _ => StructCodec::None,
        };
        let features = match label.split('/').nth(1) {
            Some("f16") => FeatCodec::F16,
            Some("int8") => FeatCodec::Int8,
            _ => FeatCodec::F32,
        };
        return CodecConfig { structure, features };
    }
    CodecConfig::default()
}

fn run_mode(
    data: &Dataset,
    structure: StructCodec,
    features: FeatCodec,
    alpha: f64,
    baseline_hits: Option<f64>,
) -> Result<Row, Box<dyn std::error::Error>> {
    let codec = CodecConfig { structure, features };
    let s = builder(codec, alpha);
    let trainer = DistTrainer::new(s.dist_config().clone(), s.train_config().clone());
    let out = trainer.run(ModelKind::GraphSage, data)?;
    let reference = trainer.run_reference(ModelKind::GraphSage, data)?;

    // The meters and the socket-carried ledgers must tell one story.
    assert_eq!(
        out.comm, reference.comm,
        "{}: cluster and reference communication reports disagree",
        codec_label(structure, features)
    );
    assert_eq!(
        out.net.data_bytes,
        out.comm.total_bytes(),
        "{}: wire ledgers disagree with the CommTracker meters",
        codec_label(structure, features)
    );
    assert_eq!(
        out.net.data_wire_bytes,
        out.comm.total_wire_bytes(),
        "{}: on-wire ledgers disagree with the CommTracker wire meters",
        codec_label(structure, features)
    );
    // Lossless codecs change the frames but not one bit of arithmetic.
    // Lossy feature codecs quantize the parameter payloads the wire
    // carries, which the wire-free reference never sees — there only the
    // communication accounting (asserted above) must agree.
    if codec.lossless() {
        assert_eq!(
            out.test_hits.to_bits(),
            reference.test_hits.to_bits(),
            "{}: lossless cluster run is not bit-identical to the sequential reference",
            codec_label(structure, features)
        );
    }

    Ok(Row {
        label: codec_label(structure, features),
        structure,
        features,
        alpha,
        transport: "channel",
        epochs: out.epochs.len(),
        structure_raw: out.comm.total_structure_bytes,
        structure_wire: out.comm.total_structure_wire_bytes,
        feature_raw: out.comm.total_feature_bytes,
        feature_wire: out.comm.total_feature_wire_bytes,
        test_hits: out.test_hits,
        hits_delta: baseline_hits.map_or(0.0, |b| out.test_hits - b),
    })
}

fn gate(rows: &[Row]) {
    for r in rows {
        assert!(
            r.structure_wire <= r.structure_raw && r.feature_wire <= r.feature_raw,
            "{}: on-wire bytes exceed raw bytes",
            r.label
        );
        if r.structure == StructCodec::None {
            assert_eq!(
                r.structure_wire, r.structure_raw,
                "{}: uncompressed structure wire bytes must equal the raw model",
                r.label
            );
        }
        if r.features == FeatCodec::F32 {
            assert_eq!(
                r.feature_wire, r.feature_raw,
                "{}: uncompressed feature wire bytes must equal the raw model",
                r.label
            );
        }
        if r.features == FeatCodec::F32 && (r.alpha - BASE_ALPHA).abs() < 1e-12 {
            // Lossless modes must reproduce the baseline accuracy exactly.
            assert_eq!(r.hits_delta, 0.0, "{}: lossless mode changed Hits@K", r.label);
        }
    }
    let varint = rows
        .iter()
        .find(|r| {
            r.structure == StructCodec::Varint
                && r.features == FeatCodec::F32
                && (r.alpha - BASE_ALPHA).abs() < 1e-12
        })
        .expect("varint/f32 row present");
    assert!(
        varint.structure_ratio() >= 2.0,
        "varint structure compression below the 2x gate: {:.2}x",
        varint.structure_ratio()
    );
    let int8 = rows
        .iter()
        .find(|r| r.features == FeatCodec::Int8 && (r.alpha - BASE_ALPHA).abs() < 1e-12)
        .expect("int8 row present");
    assert!(
        int8.feature_ratio() >= 3.5,
        "int8 feature compression below the 3.5x gate: {:.2}x",
        int8.feature_ratio()
    );
}

fn write_json(rows: &[Row]) {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "  {{\"mode\": \"{}\", \"alpha\": {:.2}, \"transport\": \"{}\", \
             \"raw_bytes_per_epoch\": {}, \"wire_bytes_per_epoch\": {}, \
             \"structure_raw\": {}, \"structure_wire\": {}, \"structure_ratio\": {:.3}, \
             \"feature_raw\": {}, \"feature_wire\": {}, \"feature_ratio\": {:.3}, \
             \"test_hits\": {:.4}, \"hits_delta\": {:.4}}}{comma}",
            r.label,
            r.alpha,
            r.transport,
            r.raw_per_epoch(),
            r.wire_per_epoch(),
            r.structure_raw,
            r.structure_wire,
            r.structure_ratio(),
            r.feature_raw,
            r.feature_wire,
            r.feature_ratio(),
            r.test_hits,
            r.hits_delta,
        );
    }
    out.push_str("]\n");
    let path = repo_root().join("BENCH_wire.json");
    std::fs::write(&path, out).expect("write BENCH_wire.json");
    println!("\nwrote {}", path.display());
}

fn repo_root() -> std::path::PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../.."),
        Err(_) => std::path::PathBuf::from("."),
    }
}

fn smoke() -> bool {
    std::env::var("SPLPG_BENCH_MS").ok().and_then(|v| v.parse::<u64>().ok()).is_some_and(|ms| ms <= 5)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Spawned worker child of the TCP row? Serve under the codec the
    // master handed us via child_args, then exit.
    let served = tcp_worker_entry(|workers| {
        let data = dataset().map_err(splpg::dist::DistError::Process)?;
        let s = builder(codec_from_args(), BASE_ALPHA);
        let trainer = DistTrainer::new(
            DistConfig { num_workers: workers, ..s.dist_config().clone() },
            s.train_config().clone(),
        );
        Ok((trainer, ModelKind::GraphSage, data))
    })?;
    if served {
        return Ok(());
    }

    let data = dataset()?;
    println!(
        "dataset: {} ({} nodes, {} edges, dim {}); 2 workers, 2 epochs, GraphSage\n",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges(),
        data.features.dim()
    );
    println!(
        "{:>14} {:>6} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "mode", "alpha", "raw B/ep", "wire B/ep", "s-ratio", "f-ratio", "hits@10", "delta"
    );

    let mut rows: Vec<Row> = Vec::new();
    let baseline = run_mode(&data, StructCodec::None, FeatCodec::F32, BASE_ALPHA, None)?;
    let baseline_hits = baseline.test_hits;
    rows.push(baseline);
    for (structure, features) in [
        (StructCodec::Varint, FeatCodec::F32),
        (StructCodec::Rle, FeatCodec::F32),
        (StructCodec::Varint, FeatCodec::F16),
        (StructCodec::Varint, FeatCodec::Int8),
    ] {
        rows.push(run_mode(&data, structure, features, BASE_ALPHA, Some(baseline_hits))?);
    }
    // α sweep: the codec's savings at lighter and heavier sparsification.
    for alpha in [0.05, 0.20] {
        let base = run_mode(&data, StructCodec::None, FeatCodec::F32, alpha, None)?;
        let base_hits = base.test_hits;
        rows.push(base);
        rows.push(run_mode(&data, StructCodec::Varint, FeatCodec::Int8, alpha, Some(base_hits))?);
    }

    for r in &rows {
        println!(
            "{:>14} {:>6.2} {:>12} {:>12} {:>7.2}x {:>7.2}x {:>8.4} {:>+8.4}",
            r.label,
            r.alpha,
            r.raw_per_epoch(),
            r.wire_per_epoch(),
            r.structure_ratio(),
            r.feature_ratio(),
            r.test_hits,
            r.hits_delta
        );
    }
    gate(&rows);

    // The compressed ledgers across real worker processes on loopback
    // TCP: the socket-carried numbers must match the in-process run of
    // the same codec exactly.
    if !smoke() && std::net::TcpListener::bind(("127.0.0.1", 0)).is_ok() {
        let codec = CodecConfig { structure: StructCodec::Varint, features: FeatCodec::Int8 };
        let s = builder(codec, BASE_ALPHA);
        let trainer = DistTrainer::new(s.dist_config().clone(), s.train_config().clone());
        let out = trainer.run_multiprocess(
            ModelKind::GraphSage,
            &data,
            &["--codec=varint/int8".to_string()],
        )?;
        let channel = rows
            .iter()
            .find(|r| {
                r.structure == StructCodec::Varint
                    && r.features == FeatCodec::Int8
                    && (r.alpha - BASE_ALPHA).abs() < 1e-12
            })
            .expect("varint/int8 row present");
        assert_eq!(out.comm.total_bytes(), channel.structure_raw + channel.feature_raw);
        assert_eq!(
            out.comm.total_wire_bytes(),
            channel.structure_wire + channel.feature_wire,
            "tcp: socket-carried wire ledgers disagree with the in-process run"
        );
        assert_eq!(out.test_hits.to_bits(), channel.test_hits.to_bits());
        println!(
            "\n{:>14} {:>6.2} {:>12} {:>12} (reconciles with the channel run byte-for-byte)",
            "tcp varint/int8",
            BASE_ALPHA,
            out.comm.total_bytes() / out.epochs.len().max(1) as u64,
            out.comm.total_wire_bytes() / out.epochs.len().max(1) as u64,
        );
        rows.push(Row {
            label: codec_label(codec.structure, codec.features),
            structure: codec.structure,
            features: codec.features,
            alpha: BASE_ALPHA,
            transport: "tcp",
            epochs: out.epochs.len(),
            structure_raw: out.comm.total_structure_bytes,
            structure_wire: out.comm.total_structure_wire_bytes,
            feature_raw: out.comm.total_feature_bytes,
            feature_wire: out.comm.total_feature_wire_bytes,
            test_hits: out.test_hits,
            hits_delta: out.test_hits - baseline_hits,
        });
    } else {
        println!("\n{:>14} SKIP: smoke run or loopback sockets unavailable", "tcp");
    }

    write_json(&rows);
    println!(
        "\nall gates passed: wire <= raw in every mode, varint structure >= 2x,\n\
         int8 features >= 3.5x, and every cluster run reconciles bit-for-bit\n\
         with its sequential reference."
    );
    Ok(())
}
