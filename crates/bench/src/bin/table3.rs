//! Table III: impact of the sparsification level alpha on SpLPG
//! (GraphSAGE, Cora): communication saving vs SpLPG+ and accuracy, for
//! alpha in {0.05, 0.10, 0.15, 0.20} and p in {4, 8, 16}.
//!
//! Expected shape: smaller alpha -> larger saving but lower accuracy;
//! alpha = 0.15 balances the trade-off (the paper's default).

use splpg::prelude::*;
use splpg_bench::{pct_saving, print_header, print_row, ExpOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let data = opts.generate(&DatasetSpec::cora())?;
    let alphas = [0.05, 0.10, 0.15, 0.20];
    let ps = opts.partition_counts();

    // Baseline comm: SpLPG+ per partition count.
    let mut plus_comm = Vec::new();
    for &p in &ps {
        let out = opts.run_strategy(
            &data,
            Strategy::SpLpgPlus,
            ModelKind::GraphSage,
            p,
            0.15,
            opts.comm_epochs,
        )?;
        plus_comm.push(out.comm.mean_epoch_bytes() as f64);
    }

    let mut header: Vec<String> = vec!["alpha".to_string()];
    for &p in &ps {
        header.push(format!("saving p={p} %"));
    }
    for &p in &ps {
        header.push(format!("accuracy p={p}"));
    }
    print_header(
        &format!("Table III — sparsification level on {} (GraphSAGE, {})", data.name, opts.hits_label()),
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for alpha in alphas {
        let mut savings = Vec::new();
        let mut accs = Vec::new();
        for (i, &p) in ps.iter().enumerate() {
            let comm = opts
                .run_strategy(&data, Strategy::SpLpg, ModelKind::GraphSage, p, alpha, opts.comm_epochs)?
                .comm
                .mean_epoch_bytes() as f64;
            savings.push(format!("{:.1}", pct_saving(plus_comm[i], comm)));
            let acc = opts
                .run_strategy(&data, Strategy::SpLpg, ModelKind::GraphSage, p, alpha, opts.epochs)?
                .test_hits;
            accs.push(format!("{acc:.3}"));
        }
        let mut row = vec![format!("{alpha:.2}")];
        row.extend(savings);
        row.extend(accs);
        print_row(&row);
    }
    println!(
        "\nshape check: saving decreases and accuracy increases with alpha;\n\
         alpha = 0.15 sits at the knee, as in Table III."
    );
    Ok(())
}
