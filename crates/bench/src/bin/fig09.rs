//! Figure 9: improvement of communication cost achieved by SpLPG over
//! SpLPG+ (same halo-retaining partitions, but complete data sharing
//! instead of sparsified remote subgraphs), GraphSAGE.
//!
//! This isolates the contribution of *sparsification alone* to the
//! savings; expected shape: 60–80% across datasets and p.

use splpg::prelude::*;
use splpg_bench::{pct_saving, print_header, print_row, ExpOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    print_header(
        "Figure 9 — SpLPG communication saving over SpLPG+ (GraphSAGE)",
        &["dataset", "p", "SpLPG MB/epoch", "SpLPG+ MB/epoch", "saving %"],
    );
    for spec in opts.comm_specs() {
        let data = opts.generate(&spec)?;
        for p in opts.partition_counts() {
            let splpg = opts
                .run_strategy(&data, Strategy::SpLpg, ModelKind::GraphSage, p, 0.15, opts.comm_epochs)?
                .comm
                .mean_epoch_bytes() as f64;
            let plus = opts
                .run_strategy(
                    &data,
                    Strategy::SpLpgPlus,
                    ModelKind::GraphSage,
                    p,
                    0.15,
                    opts.comm_epochs,
                )?
                .comm
                .mean_epoch_bytes() as f64;
            print_row(&[
                data.name.clone(),
                p.to_string(),
                format!("{:.2}", splpg / 1e6),
                format!("{:.2}", plus / 1e6),
                format!("{:.1}", pct_saving(plus, splpg)),
            ]);
        }
    }
    println!("\nshape check: sparsification alone saves ~60-80% of SpLPG+'s transfer.");
    Ok(())
}
