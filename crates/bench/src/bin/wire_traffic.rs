//! Wire-traffic reconciliation: transport-observed bytes vs the paper's
//! communication-cost meters.
//!
//! Every worker response carries a fetch ledger (edges, node ids, feature
//! elements pulled since its last answer); the master reconstructs
//! data-plane bytes from those ledgers using the same per-unit constants
//! as the `CommTracker` meters. This bin runs each training strategy over
//! the message-passing cluster runtime and cross-checks the two
//! accounting paths — they must agree to the byte. The sync-plane bytes
//! (parameter frames, headers, retries) are what the transport itself
//! moves and are reported alongside for scale.
//!
//! ```sh
//! cargo run -p splpg-bench --bin wire_traffic --release
//! ```

use splpg::net::codec::kind_name;
use splpg::prelude::*;

/// Prints the per-message-kind frame histogram of a run: how many frames
/// of each protocol kind crossed the wire and what they cost raw vs
/// on-wire under the negotiated codec.
fn print_kind_histogram(label: &str, net: &NetReport) {
    println!("
  {label}: per-kind frame histogram (raw vs on-wire)");
    println!("  {:>14} {:>8} {:>14} {:>14}", "kind", "frames", "raw bytes", "wire bytes");
    for (kind, stat) in net.kinds.iter().enumerate() {
        if stat.count == 0 {
            continue;
        }
        println!(
            "  {:>14} {:>8} {:>14} {:>14}",
            kind_name(kind as u8),
            stat.count,
            stat.raw_bytes,
            stat.wire_bytes
        );
    }
}

fn builder(strategy: Strategy) -> SpLpg {
    SpLpg::builder()
        .workers(2)
        .strategy(strategy)
        .sync(SyncMethod::ModelAveraging)
        .epochs(2)
        .hidden(8)
        .layers(2)
        .fanouts(vec![Some(5), Some(5)])
        .hits_k(10)
        .seed(17)
        .build()
}

fn dataset() -> Result<Dataset, String> {
    DatasetSpec::citeseer().generate(Scale::new(0.05, 16), 3).map_err(|e| e.to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Spawned worker child of the SpLPG/tcp row? Serve, then exit.
    let served = tcp_worker_entry(|workers| {
        let data = dataset().map_err(splpg::dist::DistError::Process)?;
        let s = builder(Strategy::SpLpg);
        let trainer = DistTrainer::new(
            DistConfig { num_workers: workers, ..s.dist_config().clone() },
            s.train_config().clone(),
        );
        Ok((trainer, ModelKind::GraphSage, data))
    })?;
    if served {
        return Ok(());
    }

    let data = DatasetSpec::citeseer().generate(Scale::new(0.05, 16), 3)?;
    println!(
        "dataset: {} ({} nodes, {} edges); 2 workers, 2 epochs, GraphSage\n",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges()
    );
    println!(
        "{:>12} {:>6} {:>14} {:>14} {:>12}",
        "strategy", "msgs", "sync bytes", "ledger bytes", "meter bytes"
    );

    for (label, strategy) in [
        ("SpLPG", Strategy::SpLpg),
        ("PSGD-PA", Strategy::PsgdPa),
        ("PSGD-PA+", Strategy::PsgdPaPlus),
    ] {
        let out = builder(strategy).run(ModelKind::GraphSage, &data)?;

        let meter = out.comm.total_bytes();
        assert_eq!(
            out.net.data_bytes, meter,
            "{label}: wire-reported fetch ledgers disagree with the CommTracker meters"
        );
        println!(
            "{label:>12} {:>6} {:>14} {:>14} {:>12}",
            out.net.messages, out.net.bytes, out.net.data_bytes, meter
        );
        if label == "SpLPG" {
            print_kind_histogram(label, &out.net);
            println!();
        }
    }

    // SpLPG again, but across real worker processes on loopback TCP:
    // the ledgers cross an actual socket and must still reconcile with
    // the meters of the in-process run, byte for byte.
    if std::net::TcpListener::bind(("127.0.0.1", 0)).is_ok() {
        let s = builder(Strategy::SpLpg);
        let trainer = DistTrainer::new(s.dist_config().clone(), s.train_config().clone());
        let out = trainer.run_multiprocess(ModelKind::GraphSage, &data, &[])?;
        let meter = out.comm.total_bytes();
        assert_eq!(
            out.net.data_bytes, meter,
            "SpLPG/tcp: socket-carried fetch ledgers disagree with the CommTracker meters"
        );
        println!(
            "{:>12} {:>6} {:>14} {:>14} {:>12}",
            "SpLPG/tcp", out.net.messages, out.net.bytes, out.net.data_bytes, meter
        );
        print_kind_histogram("SpLPG/tcp", &out.net);
    } else {
        println!("{:>12} SKIP: loopback sockets unavailable", "SpLPG/tcp");
    }

    println!(
        "\nledger bytes == meter bytes for every strategy: the transport and\n\
         the paper's communication-cost model agree on the data plane."
    );
    Ok(())
}
