//! Wire-traffic reconciliation: transport-observed bytes vs the paper's
//! communication-cost meters.
//!
//! Every worker response carries a fetch ledger (edges, node ids, feature
//! elements pulled since its last answer); the master reconstructs
//! data-plane bytes from those ledgers using the same per-unit constants
//! as the `CommTracker` meters. This bin runs each training strategy over
//! the message-passing cluster runtime and cross-checks the two
//! accounting paths — they must agree to the byte. The sync-plane bytes
//! (parameter frames, headers, retries) are what the transport itself
//! moves and are reported alongside for scale.
//!
//! ```sh
//! cargo run -p splpg-bench --bin wire_traffic --release
//! ```

use splpg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = DatasetSpec::citeseer().generate(Scale::new(0.05, 16), 3)?;
    println!(
        "dataset: {} ({} nodes, {} edges); 2 workers, 2 epochs, GraphSage\n",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges()
    );
    println!(
        "{:>12} {:>6} {:>14} {:>14} {:>12}",
        "strategy", "msgs", "sync bytes", "ledger bytes", "meter bytes"
    );

    for (label, strategy) in [
        ("SpLPG", Strategy::SpLpg),
        ("PSGD-PA", Strategy::PsgdPa),
        ("PSGD-PA+", Strategy::PsgdPaPlus),
    ] {
        let out = SpLpg::builder()
            .workers(2)
            .strategy(strategy)
            .sync(SyncMethod::ModelAveraging)
            .epochs(2)
            .hidden(8)
            .layers(2)
            .fanouts(vec![Some(5), Some(5)])
            .hits_k(10)
            .seed(17)
            .build()
            .run(ModelKind::GraphSage, &data)?;

        let meter = out.comm.total_bytes();
        assert_eq!(
            out.net.data_bytes, meter,
            "{label}: wire-reported fetch ledgers disagree with the CommTracker meters"
        );
        println!(
            "{label:>12} {:>6} {:>14} {:>14} {:>12}",
            out.net.messages, out.net.bytes, out.net.data_bytes, meter
        );
    }

    println!(
        "\nledger bytes == meter bytes for every strategy: the transport and\n\
         the paper's communication-cost model agree on the data plane."
    );
    Ok(())
}
