//! Thread-scaling bench for the parallel compute layer.
//!
//! Times the three kernels the pool accelerates — dense matmul, fan-out
//! neighbor sampling, and exact effective-resistance sparsification —
//! at 1/2/4/8 threads (via [`splpg_par::set_num_threads`]) plus the
//! scalar matmul reference, prints a table, and writes
//! `BENCH_kernels.json` (op, shape, threads, ns/iter) to the repo root.
//!
//! `SPLPG_BENCH_MS` shrinks the per-measurement budget for smoke runs.

use std::fmt::Write as _;

use splpg_bench::timing;
use splpg_rng::{Rng, SeedableRng};
use splpg_datasets::{generate_community_graph, CommunityGraphParams};
use splpg_gnn::{FullGraphAccess, NeighborSampler};
use splpg_sparsify::ExactSparsifier;
use splpg_tensor::Tensor;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Record {
    op: &'static str,
    shape: String,
    threads: usize,
    ns_per_iter: f64,
}

fn rand_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(seed);
    Tensor::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

fn community(nodes: usize, edges: usize, seed: u64) -> splpg_graph::Graph {
    let params = CommunityGraphParams { nodes, edges, ..Default::default() };
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(seed);
    generate_community_graph(&params, &mut rng).expect("valid params").0
}

fn bench_matmul(records: &mut Vec<Record>) {
    // The acceptance shape: [4096,256] x [256,256].
    let (n, k, m) = (4096usize, 256usize, 256usize);
    let shape = format!("[{n},{k}]x[{k},{m}]");
    let a = rand_tensor(n, k, 1);
    let b = rand_tensor(k, m, 2);
    timing::section(&format!("matmul {shape}"));
    let scalar = timing::bench("matmul_scalar", || a.matmul_scalar(&b));
    records.push(Record {
        op: "matmul_scalar",
        shape: shape.clone(),
        threads: 1,
        ns_per_iter: scalar.ns_per_iter,
    });
    let mut best = f64::INFINITY;
    for threads in THREAD_SWEEP {
        splpg_par::set_num_threads(threads);
        let r = timing::bench(&format!("matmul_par_t{threads}"), || a.matmul(&b));
        best = best.min(r.ns_per_iter);
        records.push(Record {
            op: "matmul",
            shape: shape.clone(),
            threads,
            ns_per_iter: r.ns_per_iter,
        });
    }
    splpg_par::set_num_threads(0);
    println!(
        "matmul best parallel speedup vs scalar: {:.2}x",
        scalar.ns_per_iter / best
    );
}

fn bench_fanout_sampling(records: &mut Vec<Record>) {
    let (nodes, edges) = (20_000usize, 120_000usize);
    let shape = format!("{nodes}n/{edges}e, 2048 seeds, fanout 25/10/5");
    let g = community(nodes, edges, 3);
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(4);
    let seeds: Vec<u32> = (0..2048).map(|_| rng.gen_range(0..nodes as u32)).collect();
    let sampler = NeighborSampler::paper_sage();
    timing::section(&format!("fanout sampling {shape}"));
    for threads in THREAD_SWEEP {
        splpg_par::set_num_threads(threads);
        let mut r = splpg_rng::rngs::StdRng::seed_from_u64(5);
        let rec = timing::bench(&format!("sample_t{threads}"), || {
            let mut access = FullGraphAccess::new(&g);
            sampler.sample(&mut access, &seeds, &mut r)
        });
        records.push(Record {
            op: "fanout_sampling",
            shape: shape.clone(),
            threads,
            ns_per_iter: rec.ns_per_iter,
        });
    }
    splpg_par::set_num_threads(0);
}

fn bench_er_sparsify(records: &mut Vec<Record>) {
    let (nodes, edges) = (200usize, 800usize);
    let shape = format!("{nodes}n/{edges}e exact resistances");
    let g = community(nodes, edges, 6);
    timing::section(&format!("ER sparsification {shape}"));
    for threads in THREAD_SWEEP {
        splpg_par::set_num_threads(threads);
        let rec = timing::bench(&format!("resistances_t{threads}"), || {
            ExactSparsifier::resistances(&g).expect("connected community graph")
        });
        records.push(Record {
            op: "er_resistances",
            shape: shape.clone(),
            threads,
            ns_per_iter: rec.ns_per_iter,
        });
    }
    splpg_par::set_num_threads(0);
}

/// Repo root: two levels above the bench crate when run via cargo,
/// else the current directory.
fn repo_root() -> std::path::PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../.."),
        Err(_) => std::path::PathBuf::from("."),
    }
}

fn write_json(records: &[Record]) {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "  {{\"op\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"ns_per_iter\": {:.1}}}{comma}",
            r.op, r.shape, r.threads, r.ns_per_iter
        );
    }
    out.push_str("]\n");
    let path = repo_root().join("BENCH_kernels.json");
    std::fs::write(&path, out).expect("write BENCH_kernels.json");
    println!("\nwrote {}", path.display());
}

fn main() {
    let mut records = Vec::new();
    bench_matmul(&mut records);
    bench_fanout_sampling(&mut records);
    bench_er_sparsify(&mut records);
    write_json(&records);
}
