//! Thread-scaling bench for the parallel compute layer.
//!
//! Times the three kernels the pool accelerates — dense matmul, fan-out
//! neighbor sampling, and exact effective-resistance sparsification —
//! at 1/2/4/8 threads (via [`splpg_par::set_num_threads`]) plus the
//! scalar matmul reference, prints a table, and writes
//! `BENCH_kernels.json` to the repo root. Each row carries the thread
//! count, ns/iter, speedup vs the single-threaded scalar baseline, a
//! throughput figure (GFLOP/s for matmul, Medges/s for sampling,
//! edges/s for sparsification), and the host's hardware thread count so
//! results from different machines are comparable. A final
//! `fanout_dedup` row records how many neighbor-list expansions the
//! cooperative (deduplicated) batch build performs versus a naive
//! per-seed-block build of the same mini-batch.
//!
//! `SPLPG_BENCH_MS` shrinks the per-measurement budget for smoke runs.
//! `--assert-speedup` exits non-zero if the best multi-threaded matmul
//! or sampling run is slower than its scalar baseline; on single-core
//! hosts (where no speedup is measurable) the assertion is skipped.

use std::fmt::Write as _;

use splpg_bench::timing;
use splpg_rng::{Rng, SeedableRng};
use splpg_datasets::{generate_community_graph, CommunityGraphParams};
use splpg_gnn::{FullGraphAccess, NeighborSampler, SamplerScratch};
use splpg_sparsify::ExactSparsifier;
use splpg_tensor::Tensor;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Naive-build block count for the dedup comparison: the frontier is
/// split into this many per-seed blocks, each expanded independently.
const DEDUP_BLOCKS: usize = 8;

struct Record {
    op: &'static str,
    shape: String,
    threads: usize,
    ns_per_iter: f64,
    /// Scalar-baseline time over this row's time (1.0 for the baseline
    /// row itself; >1 means faster than scalar).
    speedup_vs_scalar: f64,
    throughput: f64,
    throughput_unit: &'static str,
}

/// Cooperative-vs-naive expansion counts for the sampling bench graph.
struct DedupSummary {
    shape: String,
    expansions_cooperative: u64,
    expansions_naive: u64,
}

impl DedupSummary {
    fn ratio(&self) -> f64 {
        self.expansions_naive as f64 / self.expansions_cooperative.max(1) as f64
    }
}

/// Best (lowest) multi-threaded time vs its scalar baseline, for the
/// `--assert-speedup` gate.
struct SpeedupCheck {
    op: &'static str,
    scalar_ns: f64,
    best_parallel_ns: f64,
}

fn rand_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(seed);
    Tensor::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

fn community(nodes: usize, edges: usize, seed: u64) -> splpg_graph::Graph {
    let params = CommunityGraphParams { nodes, edges, ..Default::default() };
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(seed);
    generate_community_graph(&params, &mut rng).expect("valid params").0
}

fn bench_matmul(records: &mut Vec<Record>) -> SpeedupCheck {
    // The acceptance shape: [4096,256] x [256,256].
    let (n, k, m) = (4096usize, 256usize, 256usize);
    let shape = format!("[{n},{k}]x[{k},{m}]");
    let flops = 2.0 * n as f64 * k as f64 * m as f64;
    let a = rand_tensor(n, k, 1);
    let b = rand_tensor(k, m, 2);
    timing::section(&format!("matmul {shape}"));
    let scalar = timing::bench("matmul_scalar", || a.matmul_scalar(&b));
    records.push(Record {
        op: "matmul_scalar",
        shape: shape.clone(),
        threads: 1,
        ns_per_iter: scalar.ns_per_iter,
        speedup_vs_scalar: 1.0,
        throughput: flops / scalar.ns_per_iter,
        throughput_unit: "GFLOP/s",
    });
    let mut best = f64::INFINITY;
    for threads in THREAD_SWEEP {
        splpg_par::set_num_threads(threads);
        let r = timing::bench(&format!("matmul_par_t{threads}"), || a.matmul(&b));
        best = best.min(r.ns_per_iter);
        records.push(Record {
            op: "matmul",
            shape: shape.clone(),
            threads,
            ns_per_iter: r.ns_per_iter,
            speedup_vs_scalar: scalar.ns_per_iter / r.ns_per_iter,
            throughput: flops / r.ns_per_iter,
            throughput_unit: "GFLOP/s",
        });
    }
    splpg_par::set_num_threads(0);
    println!(
        "matmul best parallel speedup vs scalar: {:.2}x ({:.1} GFLOP/s)",
        scalar.ns_per_iter / best,
        flops / best
    );
    SpeedupCheck { op: "matmul", scalar_ns: scalar.ns_per_iter, best_parallel_ns: best }
}

fn bench_fanout_sampling(
    records: &mut Vec<Record>,
) -> (SpeedupCheck, DedupSummary) {
    let (nodes, edges) = (20_000usize, 120_000usize);
    let shape = format!("{nodes}n/{edges}e, 2048 seeds, fanout 25/10/5");
    let g = community(nodes, edges, 3);
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(4);
    let seeds: Vec<u32> = (0..2048).map(|_| rng.gen_range(0..nodes as u32)).collect();
    let sampler = NeighborSampler::paper_sage();
    let access = FullGraphAccess::new(&g);
    // Edge volume per batch build (deterministic given graph + seeds):
    // drives the Medges/s figure for every thread count.
    let mut scratch = SamplerScratch::new();
    let mut stats_rng = splpg_rng::rngs::StdRng::seed_from_u64(5);
    let (_, coop_stats) =
        sampler.sample_with_stats(&access, &seeds, &mut stats_rng, &mut scratch);
    let edges_per_iter = coop_stats.sampled_edges as f64;
    timing::section(&format!("fanout sampling {shape}"));
    let mut scalar_ns = f64::NAN;
    let mut best = f64::INFINITY;
    for threads in THREAD_SWEEP {
        splpg_par::set_num_threads(threads);
        let mut r = splpg_rng::rngs::StdRng::seed_from_u64(5);
        let rec = timing::bench(&format!("sample_t{threads}"), || {
            sampler.sample_with(&access, &seeds, &mut r, &mut scratch)
        });
        if threads == 1 {
            scalar_ns = rec.ns_per_iter;
        } else {
            best = best.min(rec.ns_per_iter);
        }
        records.push(Record {
            op: "fanout_sampling",
            shape: shape.clone(),
            threads,
            ns_per_iter: rec.ns_per_iter,
            speedup_vs_scalar: scalar_ns / rec.ns_per_iter,
            // sampled edges per second, in millions.
            throughput: edges_per_iter / rec.ns_per_iter * 1e3,
            throughput_unit: "Medges/s",
        });
    }
    splpg_par::set_num_threads(0);
    // Cooperative dedup vs naive per-seed-block expansion of the SAME
    // batch: both count one expansion per frontier node they visit.
    let mut naive_rng = splpg_rng::rngs::StdRng::seed_from_u64(5);
    let (_, naive_stats) =
        sampler.sample_per_seed_blocks(&access, &seeds, &mut naive_rng, DEDUP_BLOCKS);
    let dedup = DedupSummary {
        shape: shape.clone(),
        expansions_cooperative: coop_stats.expansions,
        expansions_naive: naive_stats.expansions,
    };
    println!(
        "cooperative dedup: {} expansions vs {} naive ({} blocks) — {:.2}x fewer",
        dedup.expansions_cooperative,
        dedup.expansions_naive,
        DEDUP_BLOCKS,
        dedup.ratio()
    );
    (
        SpeedupCheck { op: "fanout_sampling", scalar_ns, best_parallel_ns: best },
        dedup,
    )
}

fn bench_er_sparsify(records: &mut Vec<Record>) {
    let (nodes, edges) = (200usize, 800usize);
    let shape = format!("{nodes}n/{edges}e exact resistances");
    let g = community(nodes, edges, 6);
    timing::section(&format!("ER sparsification {shape}"));
    let mut scalar_ns = f64::NAN;
    for threads in THREAD_SWEEP {
        splpg_par::set_num_threads(threads);
        let rec = timing::bench(&format!("resistances_t{threads}"), || {
            ExactSparsifier::resistances(&g).expect("connected community graph")
        });
        if threads == 1 {
            scalar_ns = rec.ns_per_iter;
        }
        records.push(Record {
            op: "er_resistances",
            shape: shape.clone(),
            threads,
            ns_per_iter: rec.ns_per_iter,
            speedup_vs_scalar: scalar_ns / rec.ns_per_iter,
            throughput: edges as f64 / rec.ns_per_iter * 1e9,
            throughput_unit: "edges/s",
        });
    }
    splpg_par::set_num_threads(0);
}

/// Repo root: two levels above the bench crate when run via cargo,
/// else the current directory.
fn repo_root() -> std::path::PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../.."),
        Err(_) => std::path::PathBuf::from("."),
    }
}

fn write_json(records: &[Record], dedup: &DedupSummary, hardware_threads: usize) {
    let mut out = String::from("[\n");
    for r in records {
        let _ = writeln!(
            out,
            "  {{\"op\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \
             \"ns_per_iter\": {:.1}, \"speedup_vs_scalar\": {:.3}, \
             \"throughput\": {:.3}, \"throughput_unit\": \"{}\", \
             \"hardware_threads\": {}}},",
            r.op,
            r.shape,
            r.threads,
            r.ns_per_iter,
            r.speedup_vs_scalar,
            r.throughput,
            r.throughput_unit,
            hardware_threads
        );
    }
    let _ = writeln!(
        out,
        "  {{\"op\": \"fanout_dedup\", \"shape\": \"{}\", \
         \"expansions_cooperative\": {}, \"expansions_naive\": {}, \
         \"naive_blocks\": {}, \"dedup_ratio\": {:.3}, \
         \"hardware_threads\": {}}}",
        dedup.shape,
        dedup.expansions_cooperative,
        dedup.expansions_naive,
        DEDUP_BLOCKS,
        dedup.ratio(),
        hardware_threads
    );
    out.push_str("]\n");
    let path = repo_root().join("BENCH_kernels.json");
    std::fs::write(&path, out).expect("write BENCH_kernels.json");
    println!("\nwrote {}", path.display());
}

/// `--assert-speedup`: false (fail) if any multi-threaded kernel lost
/// to its scalar baseline. Meaningless on a single-core host, where the
/// pool degrades to inline execution by design — skip, reporting pass.
fn assert_speedups(checks: &[SpeedupCheck], dedup: &DedupSummary, hardware_threads: usize) -> bool {
    if hardware_threads < 2 {
        println!(
            "--assert-speedup: skipped (hardware_threads = {hardware_threads}, \
             no parallel speedup is measurable on this host)"
        );
        return true;
    }
    let mut failed = false;
    for c in checks {
        let speedup = c.scalar_ns / c.best_parallel_ns;
        if speedup < 1.0 {
            eprintln!(
                "--assert-speedup FAILED: {} best parallel {:.0} ns/iter is \
                 slower than scalar {:.0} ns/iter ({speedup:.2}x)",
                c.op, c.best_parallel_ns, c.scalar_ns
            );
            failed = true;
        } else {
            println!("--assert-speedup: {} ok ({speedup:.2}x)", c.op);
        }
    }
    if dedup.expansions_cooperative >= dedup.expansions_naive {
        eprintln!(
            "--assert-speedup FAILED: cooperative build expanded {} frontier \
             nodes, naive per-seed blocks only {}",
            dedup.expansions_cooperative, dedup.expansions_naive
        );
        failed = true;
    } else {
        println!("--assert-speedup: fanout_dedup ok ({:.2}x fewer expansions)", dedup.ratio());
    }
    !failed
}

fn main() {
    let assert_speedup = std::env::args().any(|a| a == "--assert-speedup");
    let hardware_threads = splpg_par::hardware_threads();
    let mut records = Vec::new();
    let mut checks = Vec::new();
    checks.push(bench_matmul(&mut records));
    let (sample_check, dedup) = bench_fanout_sampling(&mut records);
    checks.push(sample_check);
    bench_er_sparsify(&mut records);
    write_json(&records, &dedup, hardware_threads);
    if assert_speedup && !assert_speedups(&checks, &dedup, hardware_threads) {
        std::process::exit(1);
    }
}
