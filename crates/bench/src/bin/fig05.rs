//! Figure 5: local vs global negative samples.
//!
//! The paper's Figure 5 is an illustration; this binary quantifies it:
//! for each dataset/partitioner/p, the fraction of the full negative
//! sample space (all non-adjacent node pairs) reachable by a worker that
//! can only draw *local* negatives from its own partition.

use splpg_rng::SeedableRng;
use splpg::prelude::*;
use splpg_bench::{print_header, print_row, ExpOptions};
use splpg_partition::{RandomTma, SuperTma};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    print_header(
        "Figure 5 — fraction of the negative sample space reachable with local-only sampling",
        &["dataset", "partitioner", "p", "edge cut %", "local pair space %"],
    );
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(opts.seed);
    for spec in opts.comm_specs() {
        let data = opts.generate(&spec)?;
        let g = data.train_graph();
        let n = g.num_nodes() as u64;
        let all_pairs = n * (n - 1) / 2;
        for p in opts.partition_counts() {
            for (name, partition) in [
                ("METIS", MetisLike::default().partition(&g, p, &mut rng)?),
                ("RandomTMA", RandomTma.partition(&g, p, &mut rng)?),
                ("SuperTMA", SuperTma::default().partition(&g, p, &mut rng)?),
            ] {
                let local_pairs: u64 = partition
                    .part_sizes()
                    .iter()
                    .map(|&s| (s as u64) * (s as u64).saturating_sub(1) / 2)
                    .sum();
                print_row(&[
                    data.name.clone(),
                    name.to_string(),
                    p.to_string(),
                    format!(
                        "{:.1}",
                        100.0 * partition.edge_cut(&g) as f64 / g.num_edges() as f64
                    ),
                    format!("{:.2}", 100.0 * local_pairs as f64 / all_pairs as f64),
                ]);
            }
        }
    }
    println!(
        "\nshape check: local pair space collapses to ~100/p % — the sample space\n\
         for negatives shrinks by ~p, regardless of partitioner."
    );
    Ok(())
}
