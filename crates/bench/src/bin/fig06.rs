//! Figure 6: accuracy of GNNs trained *with and without* whole-graph
//! sparsification (centralized).
//!
//! Expected shape: sparsifying the training graph before centralized
//! training destroys link-prediction accuracy (up to ~80% drop in the
//! paper), because sparsification removes most positive samples — the
//! reason SpLPG only uses sparsified graphs for *negative* sampling.

use splpg_rng::SeedableRng;
use splpg::prelude::*;
use splpg::sparsify::DegreeSparsifier;
use splpg_bench::{print_header, print_row, ExpOptions};
use splpg_gnn::trainer::train_centralized;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let models = [ModelKind::Gcn, ModelKind::GraphSage];
    print_header(
        &format!("Figure 6 — centralized accuracy w/ and w/o sparsification (alpha = 0.15, {})", opts.hits_label()),
        &["dataset", "model", "w/o sparsify", "w/ sparsify", "drop %"],
    );
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(opts.seed);
    for spec in opts.accuracy_specs() {
        let data = opts.generate(&spec)?;
        // Sparsify the whole graph, then rebuild a split-compatible
        // dataset: train on sparsified structure while evaluating on the
        // original held-out edges.
        let sparse_graph = DegreeSparsifier::new(SparsifyConfig::with_alpha(0.15))
            .sparsify(&data.train_graph(), &mut rng)?;
        let sparse_split = EdgeSplit {
            train: sparse_graph.edges().to_vec(),
            valid: data.split.valid.clone(),
            test: data.split.test.clone(),
            valid_neg: data.split.valid_neg.clone(),
            test_neg: data.split.test_neg.clone(),
        };
        for model in models {
            let mut cfg = opts.train_config(model, opts.epochs);
            cfg.hits_k = opts.hits_for(&data);
            let plain =
                train_centralized(model, &data.graph, &data.features, &data.split, &cfg)?;
            let sparse =
                train_centralized(model, &data.graph, &data.features, &sparse_split, &cfg)?;
            let drop = 100.0 * (plain.test_hits - sparse.test_hits)
                / plain.test_hits.max(1e-9);
            print_row(&[
                data.name.clone(),
                model.name().to_string(),
                format!("{:.3}", plain.test_hits),
                format!("{:.3}", sparse.test_hits),
                format!("{:.0}", drop),
            ]);
        }
    }
    println!("\nshape check: the 'w/ sparsify' column collapses relative to 'w/o'.");
    Ok(())
}
