//! Training-step bench for the zero-realloc tape arena.
//!
//! Runs repeated GNN link-prediction training steps (sample → gather →
//! forward → backward → Adam) on one long-lived [`Tape`] at 1/2/4/8
//! threads, and measures what the arena is for: per-step wall time, the
//! peak tape backing capacity, and an allocations-per-step proxy (arena
//! buffers created or grown, which is zero once the arena has warmed up).
//! A cold-start column rebuilds the tape from scratch every step for
//! contrast. Writes `BENCH_train_step.json` to the repo root.
//!
//! `SPLPG_BENCH_MS` shrinks the measured step count for smoke runs.

use std::fmt::Write as _;
use std::time::Instant;

use splpg_rng::SeedableRng;
use splpg_datasets::{generate_community_graph, CommunityGraphParams};
use splpg_gnn::trainer::{batch_grads, ModelKind, TrainConfig};
use splpg_gnn::{FullFeatureAccess, FullGraphAccess, PerSourceNegativeSampler, SamplerScratch};
use splpg_graph::{Edge, FeatureMatrix, Graph};
use splpg_nn::{Adam, Optimizer, ParamSet};
use splpg_tensor::Tape;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Steps run before measuring: step 1 grows the arena to the working-set
/// high-water mark, step 2 proves it stays there.
const WARMUP_STEPS: usize = 2;

struct Record {
    mode: &'static str,
    threads: usize,
    ns_per_step: f64,
    peak_tape_bytes: usize,
    allocs_per_step: f64,
}

fn fixture() -> (Graph, FeatureMatrix) {
    let params =
        CommunityGraphParams { nodes: 3_000, edges: 12_000, ..Default::default() };
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(7);
    let (g, f, _) = generate_community_graph(&params, &mut rng).expect("valid params");
    (g, f)
}

fn measured_steps() -> usize {
    // Reuse the bench-budget knob: the default 100 ms budget maps to 24
    // measured steps; a smoke run (SPLPG_BENCH_MS=5 or less) does 3.
    let ms: u64 = std::env::var("SPLPG_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    if ms <= 5 {
        3
    } else {
        24
    }
}

/// Runs `steps` training steps on `tape` and `scratch` (resetting, not
/// rebuilding) and returns total wall nanoseconds.
#[allow(clippy::too_many_arguments)]
fn run_steps(
    steps: usize,
    tape: &mut Tape,
    scratch: &mut SamplerScratch,
    config: &TrainConfig,
    model: &splpg_gnn::LinkPredictor,
    params: &mut ParamSet,
    opt: &mut Adam,
    graph: &Graph,
    features: &FeatureMatrix,
    batch: &[Edge],
) -> u128 {
    let sampler = config.sampler();
    let negative_sampler = PerSourceNegativeSampler::global(graph.num_nodes());
    let start = Instant::now();
    for _step in 0..steps {
        // One fixed batch, sampling reseeded identically per step: every
        // step touches tensors of identical shapes — the steady state the
        // arena targets (and the regime the zero-alloc claim is about).
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(1_000);
        let ga = FullGraphAccess::new(graph);
        let mut fa = FullFeatureAccess::new(features);
        let (_, grads) = batch_grads(
            model,
            params,
            &ga,
            &mut fa,
            &sampler,
            &negative_sampler,
            batch,
            &mut rng,
            tape,
            scratch,
        )
        .expect("training step");
        opt.step(params, &grads);
        for g in grads {
            tape.recycle(g);
        }
    }
    start.elapsed().as_nanos()
}

fn bench_mode(
    mode: &'static str,
    threads: usize,
    graph: &Graph,
    features: &FeatureMatrix,
    records: &mut Vec<Record>,
) {
    let config = TrainConfig {
        layers: 2,
        hidden: 32,
        fanouts: vec![Some(10), Some(5)],
        seed: 17,
        ..TrainConfig::default()
    };
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(config.seed);
    let mut params = ParamSet::new();
    let model = config.build_model(ModelKind::Gcn, features.dim(), &mut params, &mut rng);
    let mut opt = Adam::new(config.learning_rate);
    let batch: Vec<Edge> = graph.edges()[..config.batch_size.min(graph.num_edges())].to_vec();

    let steps = measured_steps();
    let mut tape = Tape::new();
    let mut scratch = SamplerScratch::new();
    let (elapsed, allocs, peak) = if mode == "reused" {
        run_steps(
            WARMUP_STEPS, &mut tape, &mut scratch, &config, &model, &mut params, &mut opt,
            graph, features, &batch,
        );
        let warm = tape.arena_stats().allocations();
        let elapsed = run_steps(
            steps, &mut tape, &mut scratch, &config, &model, &mut params, &mut opt, graph,
            features, &batch,
        );
        (elapsed, tape.arena_stats().allocations() - warm, tape.backing_bytes())
    } else {
        // Cold start: a fresh tape + scratch every step, the pattern the
        // arena (and the tape-in-loop lint) exists to eliminate.
        let mut elapsed = 0u128;
        let mut peak = 0usize;
        for _ in 0..steps {
            let mut cold = Tape::new();
            let mut cold_scratch = SamplerScratch::new();
            elapsed += run_steps(
                1, &mut cold, &mut cold_scratch, &config, &model, &mut params, &mut opt,
                graph, features, &batch,
            );
            peak = peak.max(cold.backing_bytes());
        }
        (elapsed, u64::MAX, peak)
    };
    let ns_per_step = elapsed as f64 / steps as f64;
    let allocs_per_step =
        if allocs == u64::MAX { f64::NAN } else { allocs as f64 / steps as f64 };
    println!(
        "{mode:<10} t{threads}: {:>9.2} ms/step  peak tape {:>9} bytes  arena allocs/step {}",
        ns_per_step / 1e6,
        peak,
        if allocs_per_step.is_nan() { "n/a".to_string() } else { format!("{allocs_per_step:.2}") },
    );
    records.push(Record { mode, threads, ns_per_step, peak_tape_bytes: peak, allocs_per_step });
}

fn repo_root() -> std::path::PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../.."),
        Err(_) => std::path::PathBuf::from("."),
    }
}

fn write_json(records: &[Record]) {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let allocs = if r.allocs_per_step.is_nan() {
            "null".to_string()
        } else {
            format!("{:.2}", r.allocs_per_step)
        };
        let _ = writeln!(
            out,
            "  {{\"mode\": \"{}\", \"threads\": {}, \"ns_per_step\": {:.1}, \
             \"peak_tape_bytes\": {}, \"allocs_per_step\": {allocs}}}{comma}",
            r.mode, r.threads, r.ns_per_step, r.peak_tape_bytes
        );
    }
    out.push_str("]\n");
    let path = repo_root().join("BENCH_train_step.json");
    std::fs::write(&path, out).expect("write BENCH_train_step.json");
    println!("\nwrote {}", path.display());
}

fn main() {
    let (graph, features) = fixture();
    println!(
        "train-step bench: {} nodes / {} edges, GCN 2x32, batch 256",
        graph.num_nodes(),
        graph.num_edges()
    );
    let mut records = Vec::new();
    for threads in THREAD_SWEEP {
        splpg_par::set_num_threads(threads);
        bench_mode("reused", threads, &graph, &features, &mut records);
    }
    splpg_par::set_num_threads(1);
    bench_mode("cold", 1, &graph, &features, &mut records);
    splpg_par::set_num_threads(0);
    write_json(&records);

    let steady = records.iter().filter(|r| r.mode == "reused").all(|r| r.allocs_per_step == 0.0);
    println!(
        "steady-state arena allocations per step: {}",
        if steady { "0 (zero-realloc)" } else { "NONZERO — arena reuse regressed" }
    );
    if !steady {
        std::process::exit(1);
    }
}
