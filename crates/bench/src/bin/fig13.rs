//! Figure 13: impact of batch size on SpLPG (GraphSAGE, Cora, p = 4):
//! communication cost per epoch and accuracy across batch sizes.
//!
//! Expected shape: communication per epoch *decreases* as batch size
//! grows (nodes in a batch share neighbors, and a feature row is shipped
//! once per batch), while accuracy is flat until very large batches
//! degrade it.

use splpg::prelude::*;
use splpg_bench::{print_header, print_row, ExpOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let data = opts.generate(&DatasetSpec::cora())?;
    let batch_sizes: &[usize] =
        if opts.quick { &[64, 256] } else { &[32, 64, 128, 256, 512, 1024, 2048] };
    print_header(
        &format!("Figure 13 — batch-size impact on SpLPG (GraphSAGE, {}, p = 4)", data.name),
        &["batch size", "comm MB/epoch", &opts.hits_label().to_string()],
    );
    for &bs in batch_sizes {
        let dist = DistConfig {
            num_workers: 4,
            strategy: Strategy::SpLpg,
            sync: SyncMethod::ModelAveraging,
            alpha: 0.15,
            eval_every: 1,
            setup_seed: opts.seed,
            faults: None,
            sparsifier: SparsifierKind::default(),
            ..DistConfig::default()
        };
        let mut train = opts.train_config(ModelKind::GraphSage, opts.epochs);
        train.hits_k = opts.hits_for(&data);
        train.batch_size = bs;
        let out = DistTrainer::new(dist, train).run(ModelKind::GraphSage, &data)?;
        print_row(&[
            bs.to_string(),
            format!("{:.3}", out.comm.mean_epoch_bytes() as f64 / 1e6),
            format!("{:.3}", out.test_hits),
        ]);
    }
    println!(
        "\nshape check: comm column strictly decreasing in batch size; accuracy\n\
         roughly flat until the largest batches."
    );
    Ok(())
}
