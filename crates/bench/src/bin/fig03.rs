//! Figure 3: link prediction accuracy of GraphSAGE models trained by the
//! state-of-the-art methods (Centralized, PSGD-PA, RandomTMA, SuperTMA,
//! LLCG) with p = 4 workers.
//!
//! Expected shape: every vanilla distributed method falls clearly below
//! centralized training.

use splpg::prelude::*;
use splpg_bench::{print_header, print_row, ExpOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let strategies = [
        Strategy::Centralized,
        Strategy::PsgdPa,
        Strategy::RandomTma,
        Strategy::SuperTma,
        Strategy::Llcg,
    ];
    let mut header = vec!["dataset".to_string()];
    header.extend(strategies.iter().map(|s| s.name().to_string()));
    print_header(
        &format!("Figure 3 — accuracy of SOTA methods (GraphSAGE, p = 4, {})", opts.hits_label()),
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for spec in opts.accuracy_specs() {
        let data = opts.generate(&spec)?;
        let mut row = vec![data.name.clone()];
        for strategy in strategies {
            let out = opts.run_strategy(
                &data,
                strategy,
                ModelKind::GraphSage,
                4,
                0.15,
                opts.epochs,
            )?;
            row.push(format!("{:.3}", out.test_hits));
        }
        print_row(&row);
    }
    println!("\nshape check: every distributed column should be well below Centralized.");
    Ok(())
}
