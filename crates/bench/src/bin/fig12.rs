//! Figure 12: impact of full-neighbors and negative samples — the
//! ablation ladder SpLPG-- -> SpLPG- -> SpLPG -> SpLPG+ (GraphSAGE,
//! p = 4).
//!
//! * SpLPG-- : no halo retention, local negatives only;
//! * SpLPG-  : halo retention, local negatives only;
//! * SpLPG   : halo retention + global negatives via sparsified remotes;
//! * SpLPG+  : halo retention + complete data sharing.
//!
//! Expected shape: monotone accuracy increase along the ladder, with the
//! big jumps at halo retention and at global negatives.

use splpg::prelude::*;
use splpg_bench::{print_header, print_row, ExpOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let ladder = [
        Strategy::SpLpgMinusMinus,
        Strategy::SpLpgMinus,
        Strategy::SpLpg,
        Strategy::SpLpgPlus,
    ];
    print_header(
        &format!("Figure 12 — ablation of SpLPG components (GraphSAGE, p = 4, {})", opts.hits_label()),
        &["dataset", "SpLPG--", "SpLPG-", "SpLPG", "SpLPG+", "Centralized"],
    );
    for spec in opts.accuracy_specs() {
        let data = opts.generate(&spec)?;
        let mut row = vec![data.name.clone()];
        for strategy in ladder {
            let out =
                opts.run_strategy(&data, strategy, ModelKind::GraphSage, 4, 0.15, opts.epochs)?;
            row.push(format!("{:.3}", out.test_hits));
        }
        let central = opts
            .run_strategy(&data, Strategy::Centralized, ModelKind::GraphSage, 1, 0.15, opts.epochs)?
            .test_hits;
        row.push(format!("{central:.3}"));
        print_row(&row);
    }
    println!(
        "\nshape check: SpLPG-- < SpLPG- < SpLPG ~= SpLPG+ ~= Centralized —\n\
         both halo retention and global negatives are load-bearing."
    );
    Ok(())
}
