//! End-to-end bench *and* smoke gate for the effective-resistance
//! solver engine.
//!
//! On the kernel-bench community graph (200 nodes / 800 edges) it:
//!
//! 1. runs the pre-PR per-edge path (one unpreconditioned
//!    [`solve_laplacian`] per edge) as the baseline, recording its total
//!    CG iterations and matvec work (`iterations x n`) plus wall time;
//! 2. runs `ExactSparsifier`'s engine path (Jacobi-PCG, blocked
//!    multi-RHS, per-node reuse) at 1/2/4/8 threads, recording ns per
//!    resistance set, solve/iteration counts, matvec work, and
//!    steady-state workspace allocations after warm-up;
//! 3. runs the warm-start pair path (`effective_resistances_with_stats`)
//!    and records warm-start hits and estimated saved iterations;
//! 4. writes everything to `BENCH_sparsify.json` at the repo root.
//!
//! **Gate** (exit 1, for `scripts/verify.sh`):
//! * steady-state engine solves must not allocate;
//! * the engine's total PCG iterations must not exceed the
//!   unpreconditioned per-edge baseline's;
//! * total matvec work must drop by at least 5x vs the baseline;
//! * every engine resistance must match the per-edge reference within
//!   1e-6 relative error.
//!
//! `SPLPG_BENCH_MS` shrinks the per-measurement budget for smoke runs.

use std::fmt::Write as _;

use splpg_bench::timing;
use splpg_rng::SeedableRng;
use splpg_datasets::{generate_community_graph, CommunityGraphParams};
use splpg_graph::{Graph, NodeId};
use splpg_linalg::{
    effective_resistances_with_stats, solve_laplacian, CgOptions, SolverEngine,
};
use splpg_sparsify::ExactSparsifier;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Matvec-work reduction the engine must deliver vs the per-edge path.
const MIN_WORK_RATIO: f64 = 5.0;

/// Maximum relative error vs the unpreconditioned reference.
const MAX_REL_ERR: f64 = 1e-6;

fn community(nodes: usize, edges: usize, seed: u64) -> Graph {
    let params = CommunityGraphParams { nodes, edges, ..Default::default() };
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(seed);
    generate_community_graph(&params, &mut rng).expect("valid params").0
}

struct Baseline {
    resistances: Vec<f64>,
    iterations: u64,
    matvec_rows: u64,
    ns_per_set: f64,
}

/// The pre-PR path: one unpreconditioned whole-graph CG solve per edge.
fn run_baseline(g: &Graph, pairs: &[(NodeId, NodeId)]) -> Baseline {
    let n = g.num_nodes();
    let mut resistances = Vec::with_capacity(pairs.len());
    let mut iterations = 0u64;
    for &(u, v) in pairs {
        let mut b = vec![0.0f64; n];
        b[u as usize] = 1.0;
        b[v as usize] = -1.0;
        let out = solve_laplacian(g, &b, CgOptions::default()).expect("connected graph");
        iterations += out.iterations as u64;
        resistances.push(out.solution[u as usize] - out.solution[v as usize]);
    }
    let m = timing::bench("per_edge_baseline", || {
        let mut total = 0.0f64;
        for &(u, v) in pairs {
            let mut b = vec![0.0f64; n];
            b[u as usize] = 1.0;
            b[v as usize] = -1.0;
            let out = solve_laplacian(g, &b, CgOptions::default()).expect("connected graph");
            total += out.solution[u as usize] - out.solution[v as usize];
        }
        total
    });
    Baseline {
        resistances,
        iterations,
        matvec_rows: iterations * n as u64,
        ns_per_set: m.ns_per_iter,
    }
}

fn main() {
    let (nodes, edges) = (200usize, 800usize);
    let g = community(nodes, edges, 6);
    let pairs: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
    timing::section(&format!("ER engine vs per-edge baseline ({nodes}n/{edges}e community)"));

    let baseline = run_baseline(&g, &pairs);
    println!(
        "baseline: {} solves, {} CG iterations, matvec work {}",
        pairs.len(),
        baseline.iterations,
        baseline.matvec_rows
    );

    let mut failures: Vec<String> = Vec::new();
    let mut json = String::from("[\n");
    let _ = writeln!(
        json,
        "  {{\"op\": \"per_edge_baseline\", \"threads\": 1, \"ns_per_set\": {:.1}, \
         \"solves\": {}, \"iterations\": {}, \"matvec_rows\": {}}},",
        baseline.ns_per_set,
        pairs.len(),
        baseline.iterations,
        baseline.matvec_rows
    );

    // Engine path at each thread count: warm up, reset counters, then
    // measure one steady-state set for stats and the timing loop for ns.
    let mut max_rel_err = 0.0f64;
    for threads in THREAD_SWEEP {
        splpg_par::set_num_threads(threads);
        let mut engine = SolverEngine::new(&g, ExactSparsifier::engine_options());
        let mut out = Vec::with_capacity(pairs.len());
        engine.edge_resistances_into(&pairs, &mut out).expect("engine solve");
        for (i, (&r, &(u, v))) in out.iter().zip(&pairs).enumerate() {
            let reference = baseline.resistances[i];
            let rel = (r - reference).abs() / reference.abs().max(f64::MIN_POSITIVE);
            max_rel_err = max_rel_err.max(rel);
            if rel > MAX_REL_ERR {
                failures.push(format!(
                    "edge ({u},{v}) at {threads} threads: engine {r} vs reference \
                     {reference} (rel err {rel:.3e})"
                ));
            }
        }
        engine.reset_stats();
        engine.edge_resistances_into(&pairs, &mut out).expect("engine solve");
        let stats = engine.stats();
        if stats.workspace_allocs != 0 {
            failures.push(format!(
                "steady-state solves allocated {} time(s) at {threads} threads",
                stats.workspace_allocs
            ));
        }
        if stats.iterations > baseline.iterations {
            failures.push(format!(
                "PCG iterations {} exceed unpreconditioned baseline {} at {threads} threads",
                stats.iterations, baseline.iterations
            ));
        }
        let work_ratio = baseline.matvec_rows as f64 / stats.matvec_rows.max(1) as f64;
        let m = timing::bench(&format!("engine_resistances_t{threads}"), || {
            engine.edge_resistances_into(&pairs, &mut out).expect("engine solve");
            out.len()
        });
        let steady = engine.stats().workspace_allocs;
        if steady != 0 {
            failures.push(format!(
                "timed steady-state loop allocated {steady} time(s) at {threads} threads"
            ));
        }
        if work_ratio < MIN_WORK_RATIO {
            failures.push(format!(
                "matvec work reduction {work_ratio:.2}x below required {MIN_WORK_RATIO:.0}x \
                 at {threads} threads"
            ));
        }
        println!(
            "  t{threads}: {} solves, {} iterations, matvec work {} ({work_ratio:.2}x less), \
             steady-state allocs {steady}",
            stats.solves, stats.iterations, stats.matvec_rows
        );
        let _ = writeln!(
            json,
            "  {{\"op\": \"engine_resistances\", \"threads\": {threads}, \"ns_per_set\": {:.1}, \
             \"solves\": {}, \"iterations\": {}, \"matvec_rows\": {}, \
             \"matvec_work_ratio\": {work_ratio:.2}, \"steady_state_allocs\": {steady}, \
             \"max_rel_err\": {max_rel_err:.3e}}},",
            m.ns_per_iter, stats.solves, stats.iterations, stats.matvec_rows
        );
    }
    splpg_par::set_num_threads(0);

    // Warm-start pair path (satellite): sorted edge list, consecutive
    // right-hand sides share endpoints, savings are counted.
    let (_, warm_stats) = effective_resistances_with_stats(&g, &pairs, CgOptions::default())
        .expect("warm-start batch");
    println!(
        "warm-start pairs: {} solves, {} warm hits, ~{} iterations saved",
        warm_stats.solves, warm_stats.warm_start_hits, warm_stats.warm_start_saved_iterations
    );
    let _ = writeln!(
        json,
        "  {{\"op\": \"warm_start_pairs\", \"threads\": 0, \"solves\": {}, \
         \"iterations\": {}, \"warm_start_hits\": {}, \"warm_start_saved_iterations\": {}}}",
        warm_stats.solves,
        warm_stats.iterations,
        warm_stats.warm_start_hits,
        warm_stats.warm_start_saved_iterations
    );
    json.push_str("]\n");

    let path = repo_root().join("BENCH_sparsify.json");
    std::fs::write(&path, json).expect("write BENCH_sparsify.json");
    println!("\nwrote {}", path.display());

    if !failures.is_empty() {
        eprintln!("\nsparsify_bench gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("sparsify_bench gate passed (max rel err {max_rel_err:.3e})");
}

/// Repo root: two levels above the bench crate when run via cargo,
/// else the current directory.
fn repo_root() -> std::path::PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../.."),
        Err(_) => std::path::PathBuf::from("."),
    }
}
