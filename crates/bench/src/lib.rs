//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section V).
//!
//! One binary per table/figure (see `src/bin/`): `fig03` … `fig14`,
//! `table2`, `table3`, plus `repro` which runs the full suite. Each binary
//! prints the same rows/series the paper reports, on synthetic stand-in
//! datasets (see [`splpg_datasets`]). Absolute numbers differ from the
//! paper's GPU testbed; the *shape* — who wins, by roughly what factor,
//! where crossovers fall — is the reproduction target (see
//! `EXPERIMENTS.md`).
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --scale <f64>     dataset scale factor        (default 0.2)
//! --features <n>    feature-dimension cap       (default 64)
//! --epochs <n>      accuracy-run epochs         (default 120)
//! --comm-epochs <n> communication-run epochs    (default 3)
//! --hidden <n>      hidden width                (default 32)
//! --layers <n>      GNN layers                  (default 2)
//! --hits-k <n>      Hits@K cutoff               (default 0 = auto)
//! --seed <n>        RNG seed                    (default 1)
//! --quick           smoke-test profile (tiny datasets, few epochs)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use splpg::prelude::*;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Dataset scale factor (1.0 = Table I sizes).
    pub scale: f64,
    /// Feature-dimension cap.
    pub feature_cap: usize,
    /// Epochs for accuracy experiments.
    pub epochs: usize,
    /// Epochs for communication-only experiments (cost per epoch is
    /// stationary, so a few suffice).
    pub comm_epochs: usize,
    /// Hidden width.
    pub hidden: usize,
    /// GNN layers.
    pub layers: usize,
    /// Hits@K cutoff; 0 = auto (the paper-equivalent percentile, 3.6% of
    /// the evaluation negative count, floor 10).
    pub hits_k: usize,
    /// RNG seed.
    pub seed: u64,
    /// Smoke-test mode.
    pub quick: bool,
    /// Number of datasets in accuracy experiments (1-4).
    pub datasets: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 0.2,
            feature_cap: 64,
            epochs: 120,
            comm_epochs: 3,
            hidden: 32,
            layers: 2,
            hits_k: 0,
            seed: 1,
            quick: false,
            datasets: 4,
        }
    }
}

impl ExpOptions {
    /// Parses `std::env::args`; unknown flags abort with a message.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed flags.
    pub fn from_args() -> Self {
        let mut opts = ExpOptions::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].clone();
            if flag == "--quick" {
                opts.quick = true;
                i += 1;
                continue;
            }
            i += 1;
            let value = args
                .get(i)
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
                .clone();
            let numeric = |what: &str| -> String { format!("numeric value required for {what}") };
            match flag.as_str() {
                "--scale" => opts.scale = value.parse().unwrap_or_else(|_| panic!("{}", numeric("--scale"))),
                "--features" => opts.feature_cap = value.parse().unwrap_or_else(|_| panic!("{}", numeric("--features"))),
                "--epochs" => opts.epochs = value.parse().unwrap_or_else(|_| panic!("{}", numeric("--epochs"))),
                "--comm-epochs" => {
                    opts.comm_epochs = value.parse().unwrap_or_else(|_| panic!("{}", numeric("--comm-epochs")))
                }
                "--hidden" => opts.hidden = value.parse().unwrap_or_else(|_| panic!("{}", numeric("--hidden"))),
                "--layers" => opts.layers = value.parse().unwrap_or_else(|_| panic!("{}", numeric("--layers"))),
                "--hits-k" => opts.hits_k = value.parse().unwrap_or_else(|_| panic!("{}", numeric("--hits-k"))),
                "--seed" => opts.seed = value.parse().unwrap_or_else(|_| panic!("{}", numeric("--seed"))),
                "--datasets" => {
                    opts.datasets =
                        value.parse().unwrap_or_else(|_| panic!("{}", numeric("--datasets")))
                }
                other => panic!("unknown flag {other}; see crate docs for usage"),
            }
            i += 1;
        }
        if opts.quick {
            opts.scale = opts.scale.min(0.05);
            opts.epochs = opts.epochs.min(3);
            opts.comm_epochs = 1;
            opts.feature_cap = opts.feature_cap.min(16);
            opts.hidden = opts.hidden.min(8);
        }
        opts
    }

    /// The scale profile for ordinary (DGL-sized) datasets.
    pub fn dataset_scale(&self) -> Scale {
        Scale::new(self.scale, self.feature_cap)
    }

    /// The scale profile for the OGB datasets (Collab, PPA), shrunk a
    /// further 20x so the default grid stays CPU-friendly.
    pub fn ogb_scale(&self) -> Scale {
        Scale::new(self.scale * 0.05, self.feature_cap)
    }

    /// Generates a dataset with the right per-dataset scale.
    ///
    /// # Errors
    ///
    /// Propagates generation failures.
    pub fn generate(&self, spec: &DatasetSpec) -> Result<Dataset, Box<dyn std::error::Error>> {
        let scale = if spec.name == "Collab" || spec.name == "PPA" {
            self.ogb_scale()
        } else {
            self.dataset_scale()
        };
        Ok(spec.generate(scale, self.seed)?)
    }

    /// The accuracy-experiment dataset list (small/medium datasets; the
    /// paper's accuracy figures likewise focus on the DGL datasets).
    pub fn accuracy_specs(&self) -> Vec<DatasetSpec> {
        if self.quick {
            return vec![DatasetSpec::cora()];
        }
        let all = vec![
            DatasetSpec::citeseer(),
            DatasetSpec::cora(),
            DatasetSpec::chameleon(),
            DatasetSpec::pubmed(),
        ];
        let n = self.datasets.clamp(1, all.len());
        all.into_iter().take(n).collect()
    }

    /// The communication-experiment dataset list.
    pub fn comm_specs(&self) -> Vec<DatasetSpec> {
        if self.quick {
            vec![DatasetSpec::cora()]
        } else {
            vec![
                DatasetSpec::citeseer(),
                DatasetSpec::cora(),
                DatasetSpec::chameleon(),
                DatasetSpec::pubmed(),
                DatasetSpec::co_cs(),
            ]
        }
    }

    /// Partition counts evaluated by the paper.
    pub fn partition_counts(&self) -> Vec<usize> {
        if self.quick {
            vec![4]
        } else {
            vec![4, 8, 16]
        }
    }

    /// Hits@K cutoff for a dataset: explicit `--hits-k`, or the
    /// paper-equivalent percentile (the paper's Hits@100 sits at ~3.6% of
    /// its evaluation-negative counts; scaled datasets keep that
    /// percentile, floor 10).
    pub fn hits_for(&self, data: &Dataset) -> usize {
        if self.hits_k > 0 {
            self.hits_k
        } else {
            (((data.split.test_neg.len() as f64) * 0.036).round() as usize).max(10)
        }
    }

    /// Human-readable K label for table titles.
    pub fn hits_label(&self) -> String {
        if self.hits_k > 0 {
            format!("Hits@{}", self.hits_k)
        } else {
            "Hits@K* (K* = 3.6% of eval negatives)".to_string()
        }
    }

    /// Training configuration for `model` with `epochs` epochs.
    /// GraphSAGE uses the paper's sampled fanouts; the other models use
    /// full neighborhoods (as DGL's GCN/GAT examples do).
    pub fn train_config(&self, model: ModelKind, epochs: usize) -> TrainConfig {
        let fanouts = match model {
            ModelKind::GraphSage => {
                // Paper: 25/10/5 for 3 layers; trim/extend for other depths.
                let paper = [Some(25), Some(10), Some(5)];
                (0..self.layers).map(|i| paper[i.min(2)]).collect()
            }
            _ => vec![None; self.layers],
        };
        TrainConfig {
            layers: self.layers,
            hidden: self.hidden,
            epochs,
            batch_size: 256,
            learning_rate: 1e-3,
            fanouts,
            hits_k: self.hits_k,
            seed: self.seed,
            dropout: 0.0,
        }
    }

    /// Runs one strategy end-to-end.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn run_strategy(
        &self,
        data: &Dataset,
        strategy: Strategy,
        model: ModelKind,
        workers: usize,
        alpha: f64,
        epochs: usize,
    ) -> Result<DistOutcome, Box<dyn std::error::Error>> {
        let dist = DistConfig {
            num_workers: if strategy == Strategy::Centralized { 1 } else { workers },
            strategy,
            sync: SyncMethod::ModelAveraging,
            alpha,
            eval_every: 3,
            setup_seed: self.seed.wrapping_mul(31).wrapping_add(workers as u64),
            faults: None,
            sparsifier: SparsifierKind::default(),
            ..DistConfig::default()
        };
        let mut train = self.train_config(model, epochs);
        train.hits_k = self.hits_for(data);
        Ok(DistTrainer::new(dist, train).run(model, data)?)
    }
}

pub mod timing;

/// Prints a markdown-style table header.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("\n## {title}\n");
    println!("| {} |", columns.join(" | "));
    println!("|{}|", columns.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Prints one markdown table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Percentage improvement of `new` over `baseline` (positive = better /
/// cheaper depending on metric direction handled by the caller).
pub fn pct_saving(baseline: f64, new: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        100.0 * (baseline - new) / baseline
    }
}

/// Percentage accuracy improvement of `new` over `baseline`.
pub fn pct_improvement(baseline: f64, new: f64) -> f64 {
    if baseline <= 0.0 {
        if new > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        100.0 * (new - baseline) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = ExpOptions::default();
        assert_eq!(o.partition_counts(), vec![4, 8, 16]);
        assert_eq!(o.accuracy_specs().len(), 4);
        assert!(o.dataset_scale().factor > o.ogb_scale().factor);
    }

    #[test]
    fn quick_mode_shrinks_everything() {
        let mut o = ExpOptions::default();
        o.quick = true;
        // from_args applies the quick clamp; emulate it here.
        o.scale = o.scale.min(0.05);
        o.epochs = o.epochs.min(3);
        assert_eq!(o.partition_counts(), vec![4]);
        assert_eq!(o.accuracy_specs().len(), 1);
        assert!(o.epochs <= 3);
    }

    #[test]
    fn sage_config_uses_paper_fanouts() {
        let o = ExpOptions { layers: 3, ..Default::default() };
        let c = o.train_config(ModelKind::GraphSage, 5);
        assert_eq!(c.fanouts, vec![Some(25), Some(10), Some(5)]);
        let g = o.train_config(ModelKind::Gcn, 5);
        assert_eq!(g.fanouts, vec![None, None, None]);
    }

    #[test]
    fn savings_math() {
        assert_eq!(pct_saving(100.0, 20.0), 80.0);
        assert_eq!(pct_saving(0.0, 5.0), 0.0);
        assert_eq!(pct_improvement(0.2, 0.8), 300.0);
        assert!(pct_improvement(0.0, 0.1).is_infinite());
    }
}
