use splpg_tensor::{Gradients, Tape, Tensor, Var};

use crate::NnError;

/// An ordered, named collection of trainable parameter tensors.
///
/// Parameter order is the canonical layout for flattening
/// ([`ParamSet::to_flat`] / [`ParamSet::load_flat`]), which is how the
/// distributed engine ships models between workers for model averaging.
#[derive(Debug, Clone, Default)]
pub struct ParamSet {
    names: Vec<String>,
    values: Vec<Tensor>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        ParamSet::default()
    }

    /// Registers a parameter, returning its index.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> usize {
        self.names.push(name.into());
        self.values.push(value);
        self.values.len() - 1
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Parameter tensor at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn value(&self, idx: usize) -> &Tensor {
        &self.values[idx]
    }

    /// Mutable parameter tensor at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn value_mut(&mut self, idx: usize) -> &mut Tensor {
        &mut self.values[idx]
    }

    /// Parameter name at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// Total number of scalar elements across all parameters.
    pub fn num_elements(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Registers every parameter as a leaf on `tape`, returning the
    /// [`Binding`] used to address them during the forward pass and to
    /// collect their gradients afterwards.
    pub fn bind(&self, tape: &mut Tape) -> Binding {
        // leaf_copy draws the leaf storage from the tape's arena, so a
        // reused tape re-binds parameters every step without allocating.
        let vars = self.values.iter().map(|t| tape.leaf_copy(t)).collect();
        Binding { vars }
    }

    /// Serializes all parameters into one flat buffer (canonical order).
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_elements());
        for t in &self.values {
            out.extend_from_slice(t.data());
        }
        out
    }

    /// Loads parameters from a flat buffer produced by [`ParamSet::to_flat`]
    /// on an identically-structured set.
    ///
    /// # Errors
    ///
    /// [`NnError::FlatSizeMismatch`] if the buffer length differs.
    pub fn load_flat(&mut self, flat: &[f32]) -> Result<(), NnError> {
        if flat.len() != self.num_elements() {
            return Err(NnError::FlatSizeMismatch {
                expected: self.num_elements(),
                actual: flat.len(),
            });
        }
        let mut offset = 0;
        for t in &mut self.values {
            let n = t.len();
            t.data_mut().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
        Ok(())
    }

    /// Averages a list of flat parameter buffers element-wise (FedAvg-style
    /// model averaging, the synchronization the paper's baselines use).
    ///
    /// # Errors
    ///
    /// [`NnError::FlatSizeMismatch`] when buffers disagree in length;
    /// averaging an empty list is also an error.
    pub fn average_flat(buffers: &[Vec<f32>]) -> Result<Vec<f32>, NnError> {
        let Some(first) = buffers.first() else {
            return Err(NnError::FlatSizeMismatch { expected: 1, actual: 0 });
        };
        let n = first.len();
        for b in buffers {
            if b.len() != n {
                return Err(NnError::FlatSizeMismatch { expected: n, actual: b.len() });
            }
        }
        let scale = 1.0 / buffers.len() as f32;
        let mut out = vec![0.0f32; n];
        for b in buffers {
            for (o, &x) in out.iter_mut().zip(b) {
                *o += x * scale;
            }
        }
        Ok(out)
    }
}

/// Tape handles for one binding of a [`ParamSet`], parallel to its order.
#[derive(Debug, Clone)]
pub struct Binding {
    vars: Vec<Var>,
}

impl Binding {
    /// Tape var of parameter `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn var(&self, idx: usize) -> Var {
        self.vars[idx]
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the binding is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Collects per-parameter gradients in canonical order. Parameters that
    /// did not participate in the loss get zero gradients.
    pub fn collect_grads(&self, set: &ParamSet, grads: &mut Gradients) -> Vec<Tensor> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                grads.take(v).unwrap_or_else(|| {
                    let (r, c) = set.value(i).shape();
                    Tensor::zeros(r, c)
                })
            })
            .collect()
    }
}

/// Averages per-parameter gradient lists from several workers (gradient
/// averaging, Algorithm 1 line 29).
///
/// # Errors
///
/// [`NnError::GradCountMismatch`] when workers disagree on the parameter
/// count, or the list is empty.
pub fn average_grads(worker_grads: &[Vec<Tensor>]) -> Result<Vec<Tensor>, NnError> {
    let Some(first) = worker_grads.first() else {
        return Err(NnError::GradCountMismatch { expected: 1, actual: 0 });
    };
    let count = first.len();
    for g in worker_grads {
        if g.len() != count {
            return Err(NnError::GradCountMismatch { expected: count, actual: g.len() });
        }
    }
    let scale = 1.0 / worker_grads.len() as f32;
    let mut out: Vec<Tensor> = first.iter().map(|t| t.scale(scale)).collect();
    for g in &worker_grads[1..] {
        for (o, t) in out.iter_mut().zip(g) {
            o.axpy(scale, t);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_set() -> ParamSet {
        let mut set = ParamSet::new();
        set.register("a", Tensor::from_vec(1, 2, vec![1.0, 2.0]).unwrap());
        set.register("b", Tensor::from_vec(2, 1, vec![3.0, 4.0]).unwrap());
        set
    }

    #[test]
    fn flat_round_trip() {
        let set = small_set();
        let flat = set.to_flat();
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0]);
        let mut other = small_set();
        other.value_mut(0).data_mut()[0] = 99.0;
        other.load_flat(&flat).unwrap();
        assert_eq!(other.to_flat(), flat);
    }

    #[test]
    fn load_flat_checks_length() {
        let mut set = small_set();
        assert!(matches!(
            set.load_flat(&[1.0]),
            Err(NnError::FlatSizeMismatch { expected: 4, actual: 1 })
        ));
    }

    #[test]
    fn average_flat_is_elementwise_mean() {
        let avg = ParamSet::average_flat(&[vec![0.0, 2.0], vec![4.0, 6.0]]).unwrap();
        assert_eq!(avg, vec![2.0, 4.0]);
        assert!(ParamSet::average_flat(&[]).is_err());
        assert!(ParamSet::average_flat(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn binding_collects_zero_for_unused_params() {
        let set = small_set();
        let mut tape = Tape::new();
        let binding = set.bind(&mut tape);
        // Use only parameter 0 in the loss.
        let loss = tape.sum_all(binding.var(0));
        let mut grads = tape.backward(loss);
        let collected = binding.collect_grads(&set, &mut grads);
        assert_eq!(collected[0].data(), &[1.0, 1.0]);
        assert_eq!(collected[1].data(), &[0.0, 0.0]);
    }

    #[test]
    fn average_grads_matches_manual() {
        let g1 = vec![Tensor::from_vec(1, 2, vec![2.0, 0.0]).unwrap()];
        let g2 = vec![Tensor::from_vec(1, 2, vec![0.0, 4.0]).unwrap()];
        let avg = average_grads(&[g1, g2]).unwrap();
        assert_eq!(avg[0].data(), &[1.0, 2.0]);
    }

    #[test]
    fn names_and_counts() {
        let set = small_set();
        assert_eq!(set.len(), 2);
        assert_eq!(set.name(1), "b");
        assert_eq!(set.num_elements(), 4);
        assert!(!set.is_empty());
    }
}
