use splpg_tensor::Tensor;

use crate::ParamSet;

/// A first-order optimizer updating a [`ParamSet`] from per-parameter
/// gradients (canonical order).
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Implementations panic if `grads.len() != params.len()` — the caller
    /// controls both and a mismatch is a programming error.
    fn step(&mut self, params: &mut ParamSet, grads: &[Tensor]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent: `w -= lr * g` (Algorithm 1 line 30).
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet, grads: &[Tensor]) {
        assert_eq!(grads.len(), params.len(), "one gradient per parameter");
        for (i, g) in grads.iter().enumerate() {
            params.value_mut(i).axpy(-self.lr, g);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction — the paper's optimizer
/// (lr = 0.001).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Creates Adam with custom moment coefficients.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        Adam { lr, beta1, beta2, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    fn ensure_state(&mut self, params: &ParamSet) {
        if self.m.len() != params.len() {
            self.m = (0..params.len())
                .map(|i| {
                    let (r, c) = params.value(i).shape();
                    Tensor::zeros(r, c)
                })
                .collect();
            self.v = self.m.clone();
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet, grads: &[Tensor]) {
        assert_eq!(grads.len(), params.len(), "one gradient per parameter");
        self.ensure_state(params);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, g) in grads.iter().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mi, vi), &gi) in
                m.data_mut().iter_mut().zip(v.data_mut().iter_mut()).zip(g.data())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let p = params.value_mut(i);
            for ((pi, &mi), &vi) in
                p.data_mut().iter_mut().zip(m.data()).zip(v.data())
            {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                *pi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_setup() -> (ParamSet, Tensor) {
        // Minimize f(w) = ||w - target||^2 with gradient 2 (w - target).
        let mut params = ParamSet::new();
        params.register("w", Tensor::zeros(1, 3));
        let target = Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]).unwrap();
        (params, target)
    }

    fn gradient(params: &ParamSet, target: &Tensor) -> Vec<Tensor> {
        vec![params.value(0).sub(target).scale(2.0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let (mut params, target) = quadratic_setup();
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = gradient(&params, &target);
            opt.step(&mut params, &g);
        }
        let err = params.value(0).sub(&target).norm_sq();
        assert!(err < 1e-8, "error {err}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let (mut params, target) = quadratic_setup();
        let mut opt = Adam::new(0.05);
        for _ in 0..800 {
            let g = gradient(&params, &target);
            opt.step(&mut params, &g);
        }
        let err = params.value(0).sub(&target).norm_sq();
        assert!(err < 1e-4, "error {err}");
        assert_eq!(opt.steps(), 800);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step has magnitude ~lr.
        let mut params = ParamSet::new();
        params.register("w", Tensor::zeros(1, 1));
        let mut opt = Adam::new(0.01);
        let g = vec![Tensor::from_vec(1, 1, vec![5.0]).unwrap()];
        opt.step(&mut params, &g);
        let w = params.value(0).get(0, 0);
        assert!((w + 0.01).abs() < 1e-4, "first step {w}");
    }

    #[test]
    fn learning_rate_adjustable() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        let mut adam = Adam::with_betas(0.1, 0.8, 0.9);
        adam.set_learning_rate(0.2);
        assert_eq!(adam.learning_rate(), 0.2);
    }

    #[test]
    #[should_panic(expected = "one gradient per parameter")]
    fn mismatched_grads_panic() {
        let (mut params, _) = quadratic_setup();
        let mut opt = Sgd::new(0.1);
        opt.step(&mut params, &[]);
    }
}
