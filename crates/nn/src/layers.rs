use splpg_rng::Rng;
use splpg_tensor::{Tape, Tensor, Var};

use crate::{glorot_uniform, Binding, ParamSet};

/// A dense affine layer `y = x W + b`.
///
/// The layer stores parameter *indices* into a [`ParamSet`]; each forward
/// pass looks them up through the per-batch [`Binding`], so the same layer
/// definition works across tapes and across worker-local model replicas.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    weight: usize,
    bias: usize,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a Glorot-initialized `in_dim x out_dim` layer in `params`.
    pub fn new<R: Rng + ?Sized>(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let weight = params.register(format!("{name}.weight"), glorot_uniform(in_dim, out_dim, rng));
        let bias = params.register(format!("{name}.bias"), Tensor::zeros(1, out_dim));
        Linear { weight, bias, in_dim, out_dim }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter index of the weight matrix.
    pub fn weight_index(&self) -> usize {
        self.weight
    }

    /// Parameter index of the bias row.
    pub fn bias_index(&self) -> usize {
        self.bias
    }

    /// Applies the layer on the tape.
    pub fn forward(&self, tape: &mut Tape, binding: &Binding, x: Var) -> Var {
        let xw = tape.matmul(x, binding.var(self.weight));
        tape.add_bias(xw, binding.var(self.bias))
    }
}

/// A multi-layer perceptron with ReLU activations between layers (none
/// after the last).
///
/// The paper's edge predictor is a 3-layer MLP over concatenated pairwise
/// node embeddings.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Registers an MLP with the given layer sizes, e.g. `[512, 256, 1]`
    /// for input 512. `dims` must list input plus every output size (at
    /// least 2 entries).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(
        params: &mut ParamSet,
        name: &str,
        dims: &[usize],
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "mlp needs input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(params, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Applies the MLP on the tape.
    pub fn forward(&self, tape: &mut Tape, binding: &Binding, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, binding, h);
            if i + 1 < self.layers.len() {
                h = tape.relu(h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;
    use splpg_tensor::grad_check;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(0)
    }

    #[test]
    fn linear_shapes() {
        let mut params = ParamSet::new();
        let l = Linear::new(&mut params, "l", 4, 3, &mut rng());
        assert_eq!(l.in_dim(), 4);
        assert_eq!(l.out_dim(), 3);
        let mut tape = Tape::new();
        let b = params.bind(&mut tape);
        let x = tape.leaf(Tensor::ones(5, 4));
        let y = l.forward(&mut tape, &b, x);
        assert_eq!(tape.value(y).shape(), (5, 3));
    }

    #[test]
    fn linear_zero_bias_initial_output_is_xw() {
        let mut params = ParamSet::new();
        let l = Linear::new(&mut params, "l", 2, 2, &mut rng());
        let mut tape = Tape::new();
        let b = params.bind(&mut tape);
        let x = tape.leaf(Tensor::eye(2));
        let y = l.forward(&mut tape, &b, x);
        // x = I so output == W.
        assert_eq!(tape.value(y).data(), params.value(l.weight_index()).data());
    }

    #[test]
    fn mlp_hidden_relu_but_linear_output() {
        let mut params = ParamSet::new();
        let mlp = Mlp::new(&mut params, "m", &[3, 4, 1], &mut rng());
        assert_eq!(mlp.num_layers(), 2);
        // Output layer must not clamp negatives: feed inputs engineered to
        // produce a negative logit sometimes over several random inits.
        let mut saw_negative = false;
        for seed in 0..20 {
            let mut params = ParamSet::new();
            let mlp = Mlp::new(
                &mut params,
                "m",
                &[3, 4, 1],
                &mut splpg_rng::rngs::StdRng::seed_from_u64(seed),
            );
            let mut tape = Tape::new();
            let b = params.bind(&mut tape);
            let x = tape.leaf(Tensor::ones(1, 3));
            let y = mlp.forward(&mut tape, &b, x);
            if tape.value(y).get(0, 0) < 0.0 {
                saw_negative = true;
            }
        }
        assert!(saw_negative, "mlp output appears to be clamped non-negative");
    }

    #[test]
    fn mlp_gradients_flow_to_all_layers() {
        let mut params = ParamSet::new();
        let mlp = Mlp::new(&mut params, "m", &[2, 3, 1], &mut rng());
        let mut tape = Tape::new();
        let b = params.bind(&mut tape);
        let x = tape.leaf(Tensor::ones(4, 2));
        let y = mlp.forward(&mut tape, &b, x);
        let loss = tape.mean_all(y);
        let mut grads = tape.backward(loss);
        let gs = b.collect_grads(&params, &mut grads);
        // At least the last layer weight must receive nonzero gradient.
        assert!(gs.last().unwrap().norm_sq() >= 0.0);
        assert_eq!(gs.len(), params.len());
    }

    #[test]
    #[should_panic(expected = "mlp needs input and output dims")]
    fn mlp_requires_two_dims() {
        let mut params = ParamSet::new();
        let _ = Mlp::new(&mut params, "m", &[3], &mut rng());
    }

    #[test]
    fn linear_weight_gradcheck_through_layer() {
        let mut params = ParamSet::new();
        let l = Linear::new(&mut params, "l", 3, 2, &mut rng());
        let w0 = params.value(l.weight_index()).clone();
        let report = grad_check(&w0, 1e-3, |tape, wv| {
            // Rebuild the layer manually with wv as the weight leaf.
            let x = tape.leaf(Tensor::from_fn(4, 3, |r, c| (r + c) as f32 * 0.1));
            let b = tape.leaf(Tensor::zeros(1, 2));
            let xw = tape.matmul(x, wv);
            let y = tape.add_bias(xw, b);
            let a = tape.relu(y);
            tape.mean_all(a)
        });
        assert!(report.passes(2e-2), "{report:?}");
    }
}
