use splpg_rng::Rng;
use splpg_tensor::Tensor;

/// Glorot (Xavier) uniform initialization: entries drawn from
/// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// This is DGL/PyTorch's default for graph convolution weights and keeps
/// activation variance stable across layers.
///
/// # Examples
///
/// ```
/// use splpg_rng::SeedableRng;
/// use splpg_nn::glorot_uniform;
/// let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(1);
/// let w = glorot_uniform(64, 32, &mut rng);
/// let bound = (6.0f32 / 96.0).sqrt();
/// assert!(w.data().iter().all(|&v| v.abs() <= bound));
/// ```
pub fn glorot_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..=a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;

    #[test]
    fn bounds_respected() {
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(2);
        let w = glorot_uniform(10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(w.data().iter().all(|&v| v >= -a && v <= a));
        assert_eq!(w.shape(), (10, 20));
    }

    #[test]
    fn roughly_zero_mean() {
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(3);
        let w = glorot_uniform(100, 100, &mut rng);
        assert!(w.mean().abs() < 0.01, "mean {}", w.mean());
    }

    #[test]
    fn deterministic_per_seed() {
        let w1 = glorot_uniform(4, 4, &mut splpg_rng::rngs::StdRng::seed_from_u64(4));
        let w2 = glorot_uniform(4, 4, &mut splpg_rng::rngs::StdRng::seed_from_u64(4));
        assert_eq!(w1, w2);
    }
}
