//! Learning-rate schedules and gradient conditioning utilities.
//!
//! The paper trains with a fixed Adam learning rate; these utilities
//! support the extension experiments (longer runs on the larger synthetic
//! datasets converge noticeably better with warmup + decay, and gradient
//! clipping stabilizes GAT's attention logits early in training).

use splpg_tensor::Tensor;

/// A learning-rate schedule: maps a 0-based step index to a multiplier on
/// the base learning rate.
pub trait LrSchedule {
    /// Multiplier for `step` (1.0 = base rate).
    fn factor(&self, step: u64) -> f32;

    /// Effective learning rate at `step`.
    fn learning_rate(&self, base: f32, step: u64) -> f32 {
        base * self.factor(step)
    }
}

/// Constant schedule (factor 1.0 forever).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantLr;

impl LrSchedule for ConstantLr {
    fn factor(&self, _step: u64) -> f32 {
        1.0
    }
}

/// Step decay: multiply by `gamma` every `every` steps.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Steps between decays.
    pub every: u64,
    /// Multiplicative decay per stage.
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn factor(&self, step: u64) -> f32 {
        self.gamma.powi((step / self.every.max(1)) as i32)
    }
}

/// Linear warmup to factor 1.0 over `warmup` steps, then cosine decay to
/// `floor` at `total` steps (clamped afterwards).
#[derive(Debug, Clone, Copy)]
pub struct WarmupCosine {
    /// Warmup steps.
    pub warmup: u64,
    /// Total schedule length.
    pub total: u64,
    /// Final multiplier.
    pub floor: f32,
}

impl LrSchedule for WarmupCosine {
    fn factor(&self, step: u64) -> f32 {
        if self.warmup > 0 && step < self.warmup {
            return (step + 1) as f32 / self.warmup as f32;
        }
        if step >= self.total {
            return self.floor;
        }
        let span = (self.total - self.warmup).max(1) as f32;
        let progress = (step - self.warmup) as f32 / span;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.floor + (1.0 - self.floor) * cos
    }
}

/// Scales gradients in place so their global L2 norm is at most
/// `max_norm`; returns the pre-clipping norm.
pub fn clip_grad_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    let total: f32 = grads.iter().map(Tensor::norm_sq).sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for x in g.data_mut() {
                *x *= scale;
            }
        }
    }
    norm
}

/// Adds L2 weight decay to gradients in place: `g += decay * w`
/// (decoupled-style decay is the optimizer's business; this is the classic
/// L2 regularizer on the loss).
///
/// # Panics
///
/// Panics if `grads` and `weights` differ in length or shapes.
pub fn apply_weight_decay(grads: &mut [Tensor], weights: &[Tensor], decay: f32) {
    assert_eq!(grads.len(), weights.len(), "one gradient per weight");
    for (g, w) in grads.iter_mut().zip(weights) {
        g.axpy(decay, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        assert_eq!(ConstantLr.factor(0), 1.0);
        assert_eq!(ConstantLr.factor(10_000), 1.0);
        assert_eq!(ConstantLr.learning_rate(0.01, 5), 0.01);
    }

    #[test]
    fn step_decay_stages() {
        let s = StepDecay { every: 10, gamma: 0.5 };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn warmup_cosine_shape() {
        let s = WarmupCosine { warmup: 10, total: 110, floor: 0.1 };
        assert!(s.factor(0) < s.factor(5));
        assert!((s.factor(9) - 1.0).abs() < 1e-6);
        // Midpoint of cosine span: factor = floor + (1-floor)/2.
        assert!((s.factor(60) - 0.55).abs() < 0.02);
        assert_eq!(s.factor(500), 0.1);
    }

    #[test]
    fn clipping_bounds_norm() {
        let mut grads = vec![Tensor::from_vec(1, 2, vec![3.0, 4.0]).unwrap()];
        let before = clip_grad_norm(&mut grads, 1.0);
        assert_eq!(before, 5.0);
        let after: f32 = grads.iter().map(Tensor::norm_sq).sum::<f32>().sqrt();
        assert!((after - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clipping_noop_below_threshold() {
        let mut grads = vec![Tensor::from_vec(1, 2, vec![0.3, 0.4]).unwrap()];
        clip_grad_norm(&mut grads, 1.0);
        assert_eq!(grads[0].data(), &[0.3, 0.4]);
    }

    #[test]
    fn weight_decay_adds_scaled_weights() {
        let mut grads = vec![Tensor::zeros(1, 2)];
        let weights = vec![Tensor::from_vec(1, 2, vec![2.0, -4.0]).unwrap()];
        apply_weight_decay(&mut grads, &weights, 0.5);
        assert_eq!(grads[0].data(), &[1.0, -2.0]);
    }
}
