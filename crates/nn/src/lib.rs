//! Neural-network building blocks on top of [`splpg_tensor`].
//!
//! Provides what `torch.nn` / `torch.optim` provide to the original SpLPG
//! implementation:
//!
//! * [`ParamSet`] — an ordered, named collection of trainable tensors with
//!   flattening support (model averaging across workers serializes
//!   parameters to a flat `Vec<f32>` and back);
//! * [`Binding`] — per-mini-batch registration of parameters as tape
//!   leaves, plus gradient collection in parameter order;
//! * [`Linear`] and [`Mlp`] — dense layers with Glorot initialization (the
//!   3-layer MLP edge predictor of the paper is an `Mlp`);
//! * [`Sgd`] and [`Adam`] — optimizers (the paper trains with Adam,
//!   lr = 0.001).
//!
//! # Examples
//!
//! ```
//! use splpg_rng::SeedableRng;
//! use splpg_nn::{Adam, Linear, Optimizer, ParamSet};
//! use splpg_tensor::{Tape, Tensor};
//!
//! let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
//! let mut params = ParamSet::new();
//! let layer = Linear::new(&mut params, "fc", 4, 2, &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! let x = Tensor::ones(3, 4);
//! let mut tape = Tape::new();
//! let binding = params.bind(&mut tape);
//! let input = tape.leaf(x);
//! let y = layer.forward(&mut tape, &binding, input);
//! let loss = tape.mean_all(y);
//! let mut grads = tape.backward(loss);
//! let flat = binding.collect_grads(&params, &mut grads);
//! opt.step(&mut params, &flat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod init;
mod layers;
mod optim;
mod params;
mod schedule;

pub use init::glorot_uniform;
pub use layers::{Linear, Mlp};
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{average_grads, Binding, ParamSet};
pub use schedule::{apply_weight_decay, clip_grad_norm, ConstantLr, LrSchedule, StepDecay, WarmupCosine};

/// Errors from parameter management.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// Flat buffer length does not match the parameter set.
    FlatSizeMismatch {
        /// Expected element count.
        expected: usize,
        /// Supplied element count.
        actual: usize,
    },
    /// Gradient list does not match the parameter set.
    GradCountMismatch {
        /// Expected tensor count.
        expected: usize,
        /// Supplied tensor count.
        actual: usize,
    },
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::FlatSizeMismatch { expected, actual } => {
                write!(f, "flat parameter buffer has {actual} elements, expected {expected}")
            }
            NnError::GradCountMismatch { expected, actual } => {
                write!(f, "gradient list has {actual} tensors, expected {expected}")
            }
        }
    }
}

impl std::error::Error for NnError {}
