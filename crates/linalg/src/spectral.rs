use splpg_graph::{connected_components, Graph};

use crate::laplacian::LaplacianOperator;
use crate::{dot, norm, LinalgError};

/// Options for the deflated power iteration used by [`lambda2_normalized`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerIterOptions {
    /// Convergence tolerance on the eigenvalue estimate between iterations.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Seed for the deterministic pseudo-random start vector.
    pub seed: u64,
}

impl Default for PowerIterOptions {
    fn default() -> Self {
        PowerIterOptions { tolerance: 1e-10, max_iterations: 50_000, seed: 0x5eed }
    }
}

/// Estimates `gamma`, the second-smallest eigenvalue of the normalized
/// Laplacian `L_sym` — the constant in Theorem 2's upper bound
/// `r_(u,v) <= (1/d_u + 1/d_v) / gamma`.
///
/// Method: the spectrum of `L_sym` lies in `[0, 2]`, with eigenvalue 0 on
/// eigenvector `D^{1/2} 1` (for a connected graph). Power iteration on the
/// shifted operator `M = 2 I - L_sym` converges to the largest eigenvalue of
/// `M`, which is `2 - 0 = 2` on that known eigenvector; deflating it makes
/// the iteration converge to `2 - gamma` instead, from which `gamma` is
/// recovered.
///
/// # Errors
///
/// * [`LinalgError::Disconnected`] when the graph is not connected (gamma is
///   0 and the bound in Theorem 2 is vacuous);
/// * [`LinalgError::NoConvergence`] if the iteration cap is exhausted.
///
/// # Examples
///
/// ```
/// use splpg_graph::Graph;
/// use splpg_linalg::{lambda2_normalized, PowerIterOptions};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Complete graph K4: normalized Laplacian eigenvalues are 0 and n/(n-1).
/// let g = Graph::from_edges(4, &[(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)])?;
/// let gamma = lambda2_normalized(&g, PowerIterOptions::default())?;
/// assert!((gamma - 4.0 / 3.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn lambda2_normalized(
    graph: &Graph,
    options: PowerIterOptions,
) -> Result<f64, LinalgError> {
    let n = graph.num_nodes();
    let (_, components) = connected_components(graph);
    if components != 1 {
        return Err(LinalgError::Disconnected);
    }
    if n < 2 {
        return Err(LinalgError::DimensionMismatch { expected: 2, actual: n });
    }
    let op = LaplacianOperator::new(graph);

    // Known null-space eigenvector of L_sym: D^{1/2} 1, normalized.
    let mut null_vec: Vec<f64> = op.degrees().iter().map(|d| d.sqrt()).collect();
    let nn = norm(&null_vec);
    for v in null_vec.iter_mut() {
        *v /= nn;
    }

    // Deterministic xorshift-seeded start vector.
    let mut state = options.seed | 1;
    let mut x: Vec<f64> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        })
        .collect();
    deflate(&mut x, &null_vec);
    normalize(&mut x)?;

    let mut prev_eig = f64::NAN;
    for iter in 0..options.max_iterations {
        // y = (2I - L_sym) x
        let lx = op
            .apply_normalized(&x)
            .expect("invariant: x has n entries by construction above");
        let mut y: Vec<f64> = x.iter().zip(&lx).map(|(xi, li)| 2.0 * xi - li).collect();
        deflate(&mut y, &null_vec);
        let eig = dot(&x, &y); // Rayleigh quotient of M at unit x
        normalize(&mut y)?;
        x = y;
        if (eig - prev_eig).abs() <= options.tolerance {
            let gamma = 2.0 - eig;
            return Ok(gamma.max(0.0));
        }
        prev_eig = eig;
        let _ = iter;
    }
    Err(LinalgError::NoConvergence {
        iterations: options.max_iterations,
        residual: (prev_eig - 2.0).abs(),
    })
}

fn deflate(x: &mut [f64], unit_dir: &[f64]) {
    let proj = dot(x, unit_dir);
    for (xi, di) in x.iter_mut().zip(unit_dir) {
        *xi -= proj * di;
    }
}

fn normalize(x: &mut [f64]) -> Result<(), LinalgError> {
    let nrm = norm(x);
    if nrm <= f64::MIN_POSITIVE {
        return Err(LinalgError::NoConvergence { iterations: 0, residual: f64::INFINITY });
    }
    for xi in x.iter_mut() {
        *xi /= nrm;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_graph::NodeId;

    #[test]
    fn complete_graph_gamma() {
        // K_n: lambda_2(L_sym) = n / (n - 1).
        for n in [3usize, 5, 8] {
            let mut edges = Vec::new();
            for i in 0..n as NodeId {
                for j in (i + 1)..n as NodeId {
                    edges.push((i, j));
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let gamma = lambda2_normalized(&g, PowerIterOptions::default()).unwrap();
            let expect = n as f64 / (n as f64 - 1.0);
            assert!((gamma - expect).abs() < 1e-5, "K{n}: gamma {gamma} expect {expect}");
        }
    }

    #[test]
    fn cycle_gamma() {
        // Cycle C_n (2-regular): L_sym = L / 2, lambda_2 = 1 - cos(2 pi / n).
        let n = 10usize;
        let edges: Vec<(NodeId, NodeId)> =
            (0..n).map(|i| (i as NodeId, ((i + 1) % n) as NodeId)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let gamma = lambda2_normalized(&g, PowerIterOptions::default()).unwrap();
        let expect = 1.0 - (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!((gamma - expect).abs() < 1e-5, "gamma {gamma} expect {expect}");
    }

    #[test]
    fn path_graph_gamma_positive_and_small() {
        let n = 20usize;
        let edges: Vec<(NodeId, NodeId)> =
            (0..n - 1).map(|i| (i as NodeId, (i + 1) as NodeId)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let gamma = lambda2_normalized(&g, PowerIterOptions::default()).unwrap();
        assert!(gamma > 0.0 && gamma < 0.2, "path gamma {gamma}");
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            lambda2_normalized(&g, PowerIterOptions::default()).unwrap_err(),
            LinalgError::Disconnected
        );
    }

    #[test]
    fn theorem2_bounds_hold_on_small_graph() {
        // Spot-check Theorem 2 itself:
        //   (1/d_u + 1/d_v)/2 <= r_(u,v) <= (1/d_u + 1/d_v)/gamma.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]).unwrap();
        let gamma = lambda2_normalized(&g, PowerIterOptions::default()).unwrap();
        for e in g.edges() {
            let r = crate::effective_resistance(&g, e.src, e.dst, crate::CgOptions::default())
                .unwrap();
            let du = g.degree(e.src) as f64;
            let dv = g.degree(e.dst) as f64;
            let base = 1.0 / du + 1.0 / dv;
            assert!(r >= base / 2.0 - 1e-9, "lower bound violated on {e:?}");
            assert!(r <= base / gamma + 1e-9, "upper bound violated on {e:?}");
        }
    }
}
