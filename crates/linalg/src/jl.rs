//! Johnson–Lindenstrauss approximation of all-pairs effective resistances
//! — the algorithm Spielman & Srivastava actually propose for making their
//! sparsifier nearly-linear-time.
//!
//! `r(u, v) = || W^{1/2} B L^+ (e_u - e_v) ||²` where `B` is the edge-node
//! incidence matrix. Projecting the `m`-dimensional embedding with a
//! random `k x m` ±1 matrix `Q` preserves all pairwise distances within
//! `1 ± eps` for `k = O(log n / eps²)`; each row of `Z = Q W^{1/2} B L^+`
//! costs one Laplacian solve.
//!
//! This estimator sits between the paper's degree bound (Theorem 2 —
//! instant but loose) and exact per-pair CG solves (tight but `O(m)`
//! solves): `k` solves give *every* pair's resistance at once.

use splpg_rng::Rng;
use splpg_graph::{Graph, NodeId};

use crate::solver::{solve_laplacian, CgOptions};
use crate::LinalgError;

/// Precomputed JL sketch for effective-resistance queries.
///
/// # Examples
///
/// ```
/// use splpg_rng::SeedableRng;
/// use splpg_graph::Graph;
/// use splpg_linalg::{effective_resistance, CgOptions, ResistanceEstimator};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(1);
/// let est = ResistanceEstimator::build(&g, 400, CgOptions::default(), &mut rng)?;
/// let approx = est.estimate(0, 2);
/// let exact = effective_resistance(&g, 0, 2, CgOptions::default())?;
/// assert!((approx - exact).abs() / exact < 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ResistanceEstimator {
    /// `k` solution vectors, each of length `n`.
    sketch: Vec<Vec<f64>>,
}

impl ResistanceEstimator {
    /// Builds a sketch with `k` random projections (each one Laplacian
    /// solve). Larger `k` tightens the estimate; `k ~ 24 ln n / eps^2`
    /// gives the `1 ± eps` guarantee.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Disconnected`] for disconnected graphs;
    /// * [`LinalgError::NoConvergence`] if a CG solve fails.
    pub fn build<R: Rng + ?Sized>(
        graph: &Graph,
        k: usize,
        options: CgOptions,
        rng: &mut R,
    ) -> Result<Self, LinalgError> {
        let n = graph.num_nodes();
        let scale = 1.0 / (k as f64).sqrt();
        let mut sketch = Vec::with_capacity(k);
        for _ in 0..k {
            // y = B^T W^{1/2} q for a random q in {±1/sqrt(k)}^m.
            let mut y = vec![0.0f64; n];
            for e in graph.edges() {
                let w = graph.edge_weight(e.src, e.dst).unwrap_or(1.0) as f64;
                let q = if rng.gen::<bool>() { scale } else { -scale };
                let contribution = w.sqrt() * q;
                y[e.src as usize] += contribution;
                y[e.dst as usize] -= contribution;
            }
            let out = solve_laplacian(graph, &y, options)?;
            sketch.push(out.solution);
        }
        Ok(ResistanceEstimator { sketch })
    }

    /// Number of projections in the sketch.
    pub fn dimensions(&self) -> usize {
        self.sketch.len()
    }

    /// Estimated effective resistance between `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn estimate(&self, u: NodeId, v: NodeId) -> f64 {
        self.sketch
            .iter()
            .map(|z| {
                let d = z[u as usize] - z[v as usize];
                d * d
            })
            .sum()
    }

    /// Estimated resistances for every edge of `graph`, in edge-list order
    /// (the input the sparsifier's alias table wants).
    pub fn edge_resistances(&self, graph: &Graph) -> Vec<f64> {
        graph.edges().iter().map(|e| self.estimate(e.src, e.dst)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effective_resistance;
    use splpg_rng::SeedableRng;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(23)
    }

    fn wheel(n: usize) -> Graph {
        // Hub 0 plus an (n-1)-cycle: varied resistances.
        let mut edges: Vec<(NodeId, NodeId)> = (1..n).map(|i| (0, i as NodeId)).collect();
        for i in 1..n {
            let j = if i + 1 < n { i + 1 } else { 1 };
            edges.push((i as NodeId, j as NodeId));
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn estimates_match_exact_within_jl_tolerance() {
        let g = wheel(12);
        let est = ResistanceEstimator::build(&g, 600, CgOptions::default(), &mut rng()).unwrap();
        for e in g.edges().iter().take(8) {
            let exact = effective_resistance(&g, e.src, e.dst, CgOptions::default()).unwrap();
            let approx = est.estimate(e.src, e.dst);
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.3, "edge {e:?}: exact {exact}, approx {approx}");
        }
    }

    #[test]
    fn non_edge_pairs_estimated_too() {
        // JL sketch answers arbitrary pairs, not just edges.
        let g = wheel(10);
        let est = ResistanceEstimator::build(&g, 600, CgOptions::default(), &mut rng()).unwrap();
        let exact = effective_resistance(&g, 3, 7, CgOptions::default()).unwrap();
        let approx = est.estimate(3, 7);
        assert!((approx - exact).abs() / exact < 0.3);
    }

    #[test]
    fn self_pair_is_zero() {
        let g = wheel(8);
        let est = ResistanceEstimator::build(&g, 50, CgOptions::default(), &mut rng()).unwrap();
        assert_eq!(est.estimate(4, 4), 0.0);
        assert_eq!(est.dimensions(), 50);
    }

    #[test]
    fn more_projections_reduce_error() {
        let g = wheel(10);
        let exact = effective_resistance(&g, 1, 5, CgOptions::default()).unwrap();
        let mean_err = |k: usize| {
            let trials = 8;
            let mut total = 0.0;
            for seed in 0..trials {
                let mut r = splpg_rng::rngs::StdRng::seed_from_u64(seed);
                let est = ResistanceEstimator::build(&g, k, CgOptions::default(), &mut r).unwrap();
                total += (est.estimate(1, 5) - exact).abs() / exact;
            }
            total / trials as f64
        };
        assert!(mean_err(400) < mean_err(25), "error should shrink with k");
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            ResistanceEstimator::build(&g, 10, CgOptions::default(), &mut rng()),
            Err(LinalgError::Disconnected)
        ));
    }

    #[test]
    fn edge_resistances_in_edge_order() {
        let g = wheel(8);
        let est = ResistanceEstimator::build(&g, 200, CgOptions::default(), &mut rng()).unwrap();
        let rs = est.edge_resistances(&g);
        assert_eq!(rs.len(), g.num_edges());
        assert!(rs.iter().all(|&r| r > 0.0));
    }
}
