//! Johnson–Lindenstrauss approximation of all-pairs effective resistances
//! — the algorithm Spielman & Srivastava actually propose for making their
//! sparsifier nearly-linear-time.
//!
//! `r(u, v) = || W^{1/2} B L^+ (e_u - e_v) ||²` where `B` is the edge-node
//! incidence matrix. Projecting the `m`-dimensional embedding with a
//! random `k x m` ±1 matrix `Q` preserves all pairwise distances within
//! `1 ± eps` for `k = O(log n / eps²)`; each row of `Z = Q W^{1/2} B L^+`
//! costs one Laplacian solve.
//!
//! This estimator sits between the paper's degree bound (Theorem 2 —
//! instant but loose) and exact per-pair CG solves (tight but `O(m)`
//! solves): `k` solves give *every* pair's resistance at once.

use splpg_rng::Rng;
use splpg_graph::{Graph, NodeId};

use crate::engine::{EngineOptions, SolverEngine};
use crate::solver::CgOptions;
use crate::LinalgError;

/// Precomputed JL sketch for effective-resistance queries.
///
/// # Examples
///
/// ```
/// use splpg_rng::SeedableRng;
/// use splpg_graph::Graph;
/// use splpg_linalg::{effective_resistance, CgOptions, ResistanceEstimator};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(1);
/// let est = ResistanceEstimator::build(&g, 400, CgOptions::default(), &mut rng)?;
/// let approx = est.estimate(0, 2);
/// let exact = effective_resistance(&g, 0, 2, CgOptions::default())?;
/// assert!((approx - exact).abs() / exact < 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ResistanceEstimator {
    /// `k` solution vectors, each of length `n`.
    sketch: Vec<Vec<f64>>,
}

impl ResistanceEstimator {
    /// Builds a sketch with `k` random projections. The `k` Laplacian
    /// solves advance through the engine's blocked multi-RHS CG
    /// ([`SolverEngine::solve_block_into`]): each shared matvec sweep
    /// updates a whole block of projections in one pass over the CSR
    /// adjacency. Larger `k` tightens the estimate; `k ~ 24 ln n / eps^2`
    /// gives the `1 ± eps` guarantee.
    ///
    /// Disconnected graphs are supported (each projection vector is
    /// mean-free per component, so the per-component solves are
    /// consistent); estimates are only meaningful for *same-component*
    /// pairs — across components the true resistance is infinite.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NoConvergence`] / [`LinalgError::Breakdown`] if a
    /// CG solve fails.
    pub fn build<R: Rng + ?Sized>(
        graph: &Graph,
        k: usize,
        options: CgOptions,
        rng: &mut R,
    ) -> Result<Self, LinalgError> {
        let n = graph.num_nodes();
        let scale = 1.0 / (k as f64).sqrt();
        // Draw every projection first, in projection-major order over
        // edges — the exact draw sequence of the historical one-solve-
        // per-projection implementation, so sketches are reproducible
        // across this refactor for a fixed seed.
        let mut columns: Vec<Vec<f64>> = Vec::with_capacity(k);
        for _ in 0..k {
            // y = B^T W^{1/2} q for a random q in {±1/sqrt(k)}^m.
            let mut y = vec![0.0f64; n];
            for e in graph.edges() {
                let w = graph.edge_weight(e.src, e.dst).unwrap_or(1.0) as f64;
                let q = if rng.gen::<bool>() { scale } else { -scale };
                let contribution = w.sqrt() * q;
                y[e.src as usize] += contribution;
                y[e.dst as usize] -= contribution;
            }
            columns.push(y);
        }
        let engine_options = EngineOptions::with_cg(options);
        let block = engine_options.block_width.max(1);
        let mut engine = SolverEngine::new(graph, engine_options);
        let mut sketch: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut rhs = vec![0.0f64; n * block];
        let mut sol = vec![0.0f64; n * block];
        let mut start = 0usize;
        while start < k {
            let kb = block.min(k - start);
            for (j, col) in columns[start..start + kb].iter().enumerate() {
                for v in 0..n {
                    rhs[v * kb + j] = col[v];
                }
            }
            engine.solve_block_into(&rhs[..n * kb], kb, &mut sol[..n * kb])?;
            for j in 0..kb {
                sketch.push((0..n).map(|v| sol[v * kb + j]).collect());
            }
            start += kb;
        }
        Ok(ResistanceEstimator { sketch })
    }

    /// Number of projections in the sketch.
    pub fn dimensions(&self) -> usize {
        self.sketch.len()
    }

    /// Estimated effective resistance between `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn estimate(&self, u: NodeId, v: NodeId) -> f64 {
        self.sketch
            .iter()
            .map(|z| {
                let d = z[u as usize] - z[v as usize];
                d * d
            })
            .sum()
    }

    /// Estimated resistances for every edge of `graph`, in edge-list order
    /// (the input the sparsifier's alias table wants).
    pub fn edge_resistances(&self, graph: &Graph) -> Vec<f64> {
        graph.edges().iter().map(|e| self.estimate(e.src, e.dst)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effective_resistance;
    use splpg_rng::SeedableRng;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(23)
    }

    fn wheel(n: usize) -> Graph {
        // Hub 0 plus an (n-1)-cycle: varied resistances.
        let mut edges: Vec<(NodeId, NodeId)> = (1..n).map(|i| (0, i as NodeId)).collect();
        for i in 1..n {
            let j = if i + 1 < n { i + 1 } else { 1 };
            edges.push((i as NodeId, j as NodeId));
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn estimates_match_exact_within_jl_tolerance() {
        let g = wheel(12);
        let est = ResistanceEstimator::build(&g, 600, CgOptions::default(), &mut rng()).unwrap();
        for e in g.edges().iter().take(8) {
            let exact = effective_resistance(&g, e.src, e.dst, CgOptions::default()).unwrap();
            let approx = est.estimate(e.src, e.dst);
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.3, "edge {e:?}: exact {exact}, approx {approx}");
        }
    }

    #[test]
    fn non_edge_pairs_estimated_too() {
        // JL sketch answers arbitrary pairs, not just edges.
        let g = wheel(10);
        let est = ResistanceEstimator::build(&g, 600, CgOptions::default(), &mut rng()).unwrap();
        let exact = effective_resistance(&g, 3, 7, CgOptions::default()).unwrap();
        let approx = est.estimate(3, 7);
        assert!((approx - exact).abs() / exact < 0.3);
    }

    #[test]
    fn self_pair_is_zero() {
        let g = wheel(8);
        let est = ResistanceEstimator::build(&g, 50, CgOptions::default(), &mut rng()).unwrap();
        assert_eq!(est.estimate(4, 4), 0.0);
        assert_eq!(est.dimensions(), 50);
    }

    #[test]
    fn more_projections_reduce_error() {
        let g = wheel(10);
        let exact = effective_resistance(&g, 1, 5, CgOptions::default()).unwrap();
        let mean_err = |k: usize| {
            let trials = 8;
            let mut total = 0.0;
            for seed in 0..trials {
                let mut r = splpg_rng::rngs::StdRng::seed_from_u64(seed);
                let est = ResistanceEstimator::build(&g, k, CgOptions::default(), &mut r).unwrap();
                total += (est.estimate(1, 5) - exact).abs() / exact;
            }
            total / trials as f64
        };
        assert!(mean_err(400) < mean_err(25), "error should shrink with k");
    }

    #[test]
    fn disconnected_estimates_within_components() {
        // Per-component solves: intra-component estimates stay valid on a
        // disconnected graph (two disjoint edges, each resistance 1).
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let est = ResistanceEstimator::build(&g, 600, CgOptions::default(), &mut rng()).unwrap();
        for (u, v) in [(0u32, 1u32), (2, 3)] {
            let approx = est.estimate(u, v);
            assert!((approx - 1.0).abs() < 0.3, "edge ({u},{v}) estimate {approx}");
        }
    }

    #[test]
    fn edge_resistances_in_edge_order() {
        let g = wheel(8);
        let est = ResistanceEstimator::build(&g, 200, CgOptions::default(), &mut rng()).unwrap();
        let rs = est.edge_resistances(&g);
        assert_eq!(rs.len(), g.num_edges());
        assert!(rs.iter().all(|&r| r > 0.0));
    }
}
