//! Preconditioned multi-RHS Laplacian solver engine.
//!
//! The exact effective-resistance path used to be the workspace's
//! slowest kernel: one unpreconditioned CG solve *per edge*, each
//! allocating fresh vectors on every matvec. This module replaces it
//! with an engine built around three ideas:
//!
//! 1. **Jacobi-preconditioned CG with reusable workspaces.** The
//!    weighted degrees the [`LaplacianOperator`] already materializes
//!    *are* the Jacobi preconditioner; a [`CgWorkspace`] owns every
//!    vector the iteration touches, so steady-state solves perform zero
//!    heap allocations (the workspace counts its growth events, and the
//!    `sparsify_bench` gate asserts the count stays at zero after
//!    warm-up).
//! 2. **Blocked multi-RHS CG.** `k` right-hand sides advance through
//!    *shared* matvec sweeps
//!    ([`LaplacianOperator::apply_block_into`]): one pass over the CSR
//!    adjacency updates all `k` vectors, with per-column step sizes and
//!    convergence (converged columns are masked out of later sweeps).
//!    The sweep fans out over the `splpg-par` pool under the same
//!    deterministic contiguous-range partitioning and scalar-fallback
//!    rules as `splpg-tensor`'s kernels, so results are bit-identical
//!    at every thread count.
//! 3. **Per-node solve reuse.** For a batch of edges, the engine solves
//!    for the pseudo-inverse potential vector of each *distinct
//!    endpoint* (`<= n` solves) instead of one solve per edge (`m`
//!    solves), recovering every resistance exactly as
//!    `R(u,v) = x_u[u] - x_u[v] - x_v[u] + x_v[v]` — the four-term
//!    expansion of Eq. (3)'s quadratic form, in which the solver's
//!    per-component constant offsets cancel identically.
//!
//! The engine also generalizes every solve to **disconnected** graphs
//! by projecting per connected component (the Laplacian's null space is
//! spanned by the component indicator vectors): resistances are defined
//! for any same-component pair, which is exactly what the distributed
//! setup path needs — partition-local subgraphs keep all `n` global
//! node ids and are never connected.

use splpg_graph::{connected_components, Graph, NodeId};
use splpg_par::Pool;

use crate::laplacian::LaplacianOperator;
use crate::{CgOptions, LinalgError};

/// Tuning knobs for [`SolverEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOptions {
    /// Tolerance / iteration cap shared by every solve.
    pub cg: CgOptions,
    /// Right-hand sides advanced per shared matvec sweep.
    pub block_width: usize,
    /// Estimated flops per sweep below which the matvec stays scalar
    /// (same convention as `splpg-tensor::kernels::PAR_FLOP_THRESHOLD`).
    pub par_flop_threshold: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions { cg: CgOptions::default(), block_width: 16, par_flop_threshold: 2_000_000 }
    }
}

impl EngineOptions {
    /// Options with a specific CG tolerance/cap and defaults elsewhere.
    pub fn with_cg(cg: CgOptions) -> Self {
        EngineOptions { cg, ..EngineOptions::default() }
    }
}

/// Cumulative counters for everything a [`SolverEngine`] has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Right-hand-side columns solved.
    pub solves: u64,
    /// Per-column CG iterations, summed.
    pub iterations: u64,
    /// Matvec work: active columns times operator dimension, summed over
    /// every sweep (the `iterations x n` quantity the bench gates on).
    pub matvec_rows: u64,
    /// Solves seeded from a previous solution (shared-endpoint groups).
    pub warm_start_hits: u64,
    /// Estimated iterations saved by warm starting: for each group the
    /// cold first solve's count minus each warm solve's count (clamped
    /// at zero per solve).
    pub warm_start_saved_iterations: u64,
    /// Workspace buffer growth events. Zero once warmed up — the
    /// steady-state-allocation gate in `sparsify_bench`.
    pub workspace_allocs: u64,
}

impl SolveStats {
    /// Accumulates `other` into `self` (used when per-group stats from a
    /// parallel batch are merged in deterministic group order).
    pub fn merge(&mut self, other: &SolveStats) {
        self.solves += other.solves;
        self.iterations += other.iterations;
        self.matvec_rows += other.matvec_rows;
        self.warm_start_hits += other.warm_start_hits;
        self.warm_start_saved_iterations += other.warm_start_saved_iterations;
        self.workspace_allocs += other.workspace_allocs;
    }
}

/// Reusable solver storage: every vector the PCG iteration touches,
/// plus the index scratch of the per-node-reuse path. Buffers grow
/// monotonically and are recycled across solves; growth events are
/// counted so benches can prove the steady state allocation-free.
#[derive(Debug, Default)]
pub struct CgWorkspace {
    x: Vec<f64>,
    b: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    comp_sums: Vec<f64>,
    bnorm: Vec<f64>,
    rz: Vec<f64>,
    rz_next: Vec<f64>,
    pap: Vec<f64>,
    alpha: Vec<f64>,
    rr: Vec<f64>,
    active: Vec<bool>,
    col_iters: Vec<usize>,
    distinct: Vec<NodeId>,
    partner_offsets: Vec<usize>,
    partners: Vec<NodeId>,
    entries: Vec<f64>,
    incidence: Vec<(NodeId, NodeId)>,
    order: Vec<u32>,
    grow_events: u64,
}

/// Grows `buf` to `len` zeroed entries, counting a reallocation event
/// when the capacity was insufficient.
fn grow_f64(buf: &mut Vec<f64>, len: usize, events: &mut u64) {
    if len > buf.capacity() {
        *events += 1;
    }
    buf.clear();
    buf.resize(len, 0.0);
}

fn grow_with<T: Clone>(buf: &mut Vec<T>, len: usize, fill: T, events: &mut u64) {
    if len > buf.capacity() {
        *events += 1;
    }
    buf.clear();
    buf.resize(len, fill);
}

impl CgWorkspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        CgWorkspace::default()
    }

    /// Buffer growth events so far (zero after warm-up is the
    /// steady-state guarantee).
    pub fn alloc_events(&self) -> u64 {
        self.grow_events
    }

    /// Sizes every PCG buffer for an `n`-dimensional solve of `k`
    /// columns over `nc` components. `preserve_x` keeps the current
    /// solution block (warm start) when its length already matches.
    fn prepare(&mut self, n: usize, k: usize, nc: usize, preserve_x: bool) {
        let ev = &mut self.grow_events;
        if !(preserve_x && self.x.len() == n * k) {
            grow_f64(&mut self.x, n * k, ev);
        }
        grow_f64(&mut self.b, n * k, ev);
        grow_f64(&mut self.r, n * k, ev);
        grow_f64(&mut self.z, n * k, ev);
        grow_f64(&mut self.p, n * k, ev);
        grow_f64(&mut self.ap, n * k, ev);
        grow_f64(&mut self.comp_sums, nc * k, ev);
        grow_f64(&mut self.bnorm, k, ev);
        grow_f64(&mut self.rz, k, ev);
        grow_f64(&mut self.rz_next, k, ev);
        grow_f64(&mut self.pap, k, ev);
        grow_f64(&mut self.alpha, k, ev);
        grow_f64(&mut self.rr, k, ev);
        grow_with(&mut self.active, k, true, ev);
        grow_with(&mut self.col_iters, k, 0usize, ev);
    }
}

/// Immutable solve context: operator, preconditioner, and component
/// structure, shared by every solve against one graph (and across
/// threads by the grouped batch path).
pub(crate) struct SolverContext<'g> {
    graph: &'g Graph,
    op: LaplacianOperator<'g>,
    /// Jacobi preconditioner `D^{-1}` (zero on isolated nodes, which
    /// never carry residual mass).
    inv_diag: Vec<f64>,
    /// Connected-component label per node.
    comp_of: Vec<usize>,
    /// Nodes per component, as `f64` divisors for the projection.
    comp_sizes: Vec<f64>,
    options: EngineOptions,
}

impl<'g> SolverContext<'g> {
    pub(crate) fn new(graph: &'g Graph, options: EngineOptions) -> Self {
        let op = LaplacianOperator::new(graph);
        let inv_diag =
            op.degrees().iter().map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 }).collect();
        let (comp_of, num_comps) = connected_components(graph);
        let mut comp_sizes = vec![0.0f64; num_comps];
        for &c in &comp_of {
            comp_sizes[c] += 1.0;
        }
        SolverContext { graph, op, inv_diag, comp_of, comp_sizes, options }
    }

    fn dim(&self) -> usize {
        self.op.dim()
    }

    /// Same-component check for a resistance query; `u == v` pairs are
    /// exempt (resistance zero without a solve).
    pub(crate) fn check_pair(&self, u: NodeId, v: NodeId) -> Result<(), LinalgError> {
        let n = self.dim();
        if (u as usize) >= n || (v as usize) >= n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                actual: u.max(v) as usize + 1,
            });
        }
        if u != v && self.comp_of[u as usize] != self.comp_of[v as usize] {
            return Err(LinalgError::Disconnected);
        }
        Ok(())
    }

    /// Projects each active column of `buf` onto the complement of the
    /// Laplacian null space: subtracts the per-component mean within
    /// every component. For a connected graph this is plain mean
    /// removal; per-component it keeps disconnected solves consistent
    /// (`L x = b` is solvable iff `b` sums to zero on each component).
    fn project_block(&self, buf: &mut [f64], sums: &mut [f64], k: usize, active: &[bool]) {
        let n = self.dim();
        let nc = self.comp_sizes.len();
        sums[..nc * k].fill(0.0);
        for v in 0..n {
            let c = self.comp_of[v];
            for j in 0..k {
                if active[j] {
                    sums[c * k + j] += buf[v * k + j];
                }
            }
        }
        for c in 0..nc {
            for j in 0..k {
                sums[c * k + j] /= self.comp_sizes[c];
            }
        }
        for v in 0..n {
            let c = self.comp_of[v];
            for j in 0..k {
                if active[j] {
                    buf[v * k + j] -= sums[c * k + j];
                }
            }
        }
    }

    /// The pool the shared matvec sweep runs on: the global pool when
    /// the sweep carries enough flops *and* fan-out can actually run
    /// concurrently, else an inline single-thread pool. The kernel is
    /// bit-identical either way, so this gate affects time only.
    fn matvec_pool(&self, k_active: usize) -> Pool {
        let sweep_flops = k_active * (4 * self.graph.num_edges() + 2 * self.dim());
        if sweep_flops >= self.options.par_flop_threshold && splpg_par::effective_threads() > 1 {
            splpg_par::global()
        } else {
            Pool::new(1)
        }
    }

    /// Jacobi-preconditioned CG over the `k`-column block held in
    /// `ws.b`, starting from `ws.x` (zeroed unless warm-started); the
    /// solution block replaces `ws.x`. Per-column iteration counts land
    /// in `ws.col_iters`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Breakdown`] when a search direction loses
    ///   positive curvature (`p·Ap <= 0`);
    /// * [`LinalgError::NoConvergence`] when the iteration cap is
    ///   reached with any column above tolerance.
    fn pcg_block(
        &self,
        ws: &mut CgWorkspace,
        k: usize,
        warm: bool,
        stats: &mut SolveStats,
    ) -> Result<(), LinalgError> {
        let n = self.dim();
        let CgOptions { tolerance, max_iterations } = self.options.cg;
        let CgWorkspace {
            x,
            b,
            r,
            z,
            p,
            ap,
            comp_sums,
            bnorm,
            rz,
            rz_next,
            pap,
            alpha,
            rr,
            active,
            col_iters,
            ..
        } = ws;
        active[..k].fill(true);
        col_iters[..k].fill(0);

        self.project_block(b, comp_sums, k, active);
        col_dots(b, b, n, k, active, bnorm);
        for bj in bnorm[..k].iter_mut() {
            *bj = bj.sqrt().max(f64::MIN_POSITIVE);
        }
        if warm {
            self.project_block(x, comp_sums, k, active);
            self.op
                .apply_block_into(x, k, active, ap, &self.matvec_pool(k))
                .expect("invariant: workspace buffers sized n*k above");
            stats.matvec_rows += (n * k) as u64;
            for i in 0..n * k {
                r[i] = b[i] - ap[i];
            }
        } else {
            r.copy_from_slice(b);
        }
        self.project_block(r, comp_sums, k, active);
        for v in 0..n {
            let s = self.inv_diag[v];
            for j in 0..k {
                z[v * k + j] = s * r[v * k + j];
            }
        }
        self.project_block(z, comp_sums, k, active);
        p.copy_from_slice(z);
        col_dots(r, z, n, k, active, rz);

        for _ in 0..=max_iterations {
            // Deactivate converged columns, then sweep only the rest.
            col_dots(r, r, n, k, active, rr);
            let mut k_active = 0usize;
            for j in 0..k {
                if active[j] {
                    if rr[j].sqrt() <= tolerance * bnorm[j] {
                        active[j] = false;
                    } else {
                        k_active += 1;
                    }
                }
            }
            if k_active == 0 {
                return Ok(());
            }
            if col_iters[..k]
                .iter()
                .zip(active[..k].iter())
                .any(|(&it, &a)| a && it >= max_iterations)
            {
                break;
            }
            self.op
                .apply_block_into(p, k, active, ap, &self.matvec_pool(k_active))
                .expect("invariant: workspace buffers sized n*k above");
            stats.matvec_rows += (n * k_active) as u64;
            col_dots(p, ap, n, k, active, pap);
            for j in 0..k {
                if !active[j] {
                    continue;
                }
                if pap[j] <= 0.0 {
                    return Err(LinalgError::Breakdown {
                        iteration: col_iters[j],
                        curvature: pap[j],
                    });
                }
                alpha[j] = rz[j] / pap[j];
                col_iters[j] += 1;
                stats.iterations += 1;
            }
            for v in 0..n {
                for j in 0..k {
                    if active[j] {
                        x[v * k + j] += alpha[j] * p[v * k + j];
                        r[v * k + j] -= alpha[j] * ap[v * k + j];
                    }
                }
            }
            // Numerical drift can reintroduce component-constant mass.
            self.project_block(r, comp_sums, k, active);
            for v in 0..n {
                let s = self.inv_diag[v];
                for j in 0..k {
                    if active[j] {
                        z[v * k + j] = s * r[v * k + j];
                    }
                }
            }
            self.project_block(z, comp_sums, k, active);
            col_dots(r, z, n, k, active, rz_next);
            for j in 0..k {
                if !active[j] {
                    continue;
                }
                if rz_next[j] <= 0.0 {
                    // r·D^{-1}r = 0 only at an exactly-zero residual:
                    // the column converged between checks.
                    active[j] = false;
                    continue;
                }
                let beta = rz_next[j] / rz[j];
                for v in 0..n {
                    p[v * k + j] = z[v * k + j] + beta * p[v * k + j];
                }
                rz[j] = rz_next[j];
            }
        }
        col_dots(r, r, n, k, active, rr);
        let mut worst = 0.0f64;
        for j in 0..k {
            if active[j] {
                worst = worst.max(rr[j].sqrt() / bnorm[j]);
            }
        }
        Err(LinalgError::NoConvergence { iterations: max_iterations, residual: worst })
    }

    /// One pair solve `L x = e_u - e_v`, returning `(resistance,
    /// iterations)`. With `warm`, the workspace's previous solution
    /// seeds CG (valid when the previous solve shared the endpoint `u`:
    /// the potentials differ only by the sink term, so the old solution
    /// is an excellent initial guess). The pair must already be
    /// validated via [`SolverContext::check_pair`].
    pub(crate) fn solve_pair(
        &self,
        ws: &mut CgWorkspace,
        u: NodeId,
        v: NodeId,
        warm: bool,
        stats: &mut SolveStats,
    ) -> Result<(f64, usize), LinalgError> {
        let n = self.dim();
        ws.prepare(n, 1, self.comp_sizes.len(), warm);
        ws.b[u as usize] = 1.0;
        ws.b[v as usize] = -1.0;
        self.pcg_block(ws, 1, warm, stats)?;
        stats.solves += 1;
        Ok((ws.x[u as usize] - ws.x[v as usize], ws.col_iters[0]))
    }
}

/// Per-column dot products of node-major blocks, accumulated over nodes
/// in ascending order (deterministic at any thread count because it
/// never fans out).
fn col_dots(a: &[f64], b: &[f64], n: usize, k: usize, active: &[bool], out: &mut [f64]) {
    out[..k].fill(0.0);
    for v in 0..n {
        for j in 0..k {
            if active[j] {
                out[j] += a[v * k + j] * b[v * k + j];
            }
        }
    }
}

/// Fast effective-resistance engine: Jacobi-preconditioned, blocked
/// multi-RHS CG over a reusable [`CgWorkspace`], with per-node solve
/// reuse for edge batches and warm-started solves for shared-endpoint
/// pair batches.
///
/// Construction is `O(n + m)` (degrees + connected components); every
/// subsequent solve recycles the workspace, so steady-state solves
/// allocate nothing.
///
/// # Examples
///
/// ```
/// use splpg_graph::Graph;
/// use splpg_linalg::{effective_resistance, CgOptions, EngineOptions, SolverEngine};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)])?;
/// let mut engine = SolverEngine::new(&g, EngineOptions::default());
/// let pairs: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
/// let rs = engine.edge_resistances(&pairs)?;
/// for (i, &(u, v)) in pairs.iter().enumerate() {
///     let reference = effective_resistance(&g, u, v, CgOptions::default())?;
///     assert!((rs[i] - reference).abs() < 1e-6);
/// }
/// assert_eq!(engine.stats().solves, 4); // one per distinct endpoint
/// # Ok(())
/// # }
/// ```
pub struct SolverEngine<'g> {
    ctx: SolverContext<'g>,
    ws: CgWorkspace,
    stats: SolveStats,
}

impl<'g> SolverEngine<'g> {
    /// Builds an engine for `graph`. Disconnected graphs are fine:
    /// solves project per component, and resistance queries demand only
    /// that the two endpoints share a component.
    pub fn new(graph: &'g Graph, options: EngineOptions) -> Self {
        SolverEngine { ctx: SolverContext::new(graph, options), ws: CgWorkspace::new(), stats: SolveStats::default() }
    }

    /// Number of connected components of the underlying graph.
    pub fn num_components(&self) -> usize {
        self.ctx.comp_sizes.len()
    }

    /// Cumulative counters (solves, iterations, matvec work, warm-start
    /// savings, workspace growth events).
    pub fn stats(&self) -> SolveStats {
        SolveStats { workspace_allocs: self.ws.alloc_events(), ..self.stats }
    }

    /// Zeroes the counters — including the workspace growth count, so a
    /// bench can warm up, reset, and then assert zero steady-state
    /// allocations.
    pub fn reset_stats(&mut self) {
        self.stats = SolveStats::default();
        self.ws.grow_events = 0;
    }

    /// Solves `L x = b` (Jacobi-PCG, per-component projection), writing
    /// the solution into `x`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] on wrong lengths, else as
    /// [`SolverContext::pcg_block`]: [`LinalgError::Breakdown`] /
    /// [`LinalgError::NoConvergence`].
    pub fn solve_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<usize, LinalgError> {
        self.solve_block_into(b, 1, x)?;
        Ok(self.ws.col_iters[0])
    }

    /// Solves `L X = B` for `k` node-major columns through the blocked
    /// multi-RHS path, writing the solution block into `solutions`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `rhs`/`solutions` are not
    /// `n * k` long; [`LinalgError::Breakdown`] /
    /// [`LinalgError::NoConvergence`] from the iteration.
    pub fn solve_block_into(
        &mut self,
        rhs: &[f64],
        k: usize,
        solutions: &mut [f64],
    ) -> Result<(), LinalgError> {
        let n = self.ctx.dim();
        if rhs.len() != n * k || solutions.len() != n * k {
            return Err(LinalgError::DimensionMismatch {
                expected: n * k,
                actual: if rhs.len() != n * k { rhs.len() } else { solutions.len() },
            });
        }
        self.ws.prepare(n, k, self.ctx.comp_sizes.len(), false);
        self.ws.b.copy_from_slice(rhs);
        self.ctx.pcg_block(&mut self.ws, k, false, &mut self.stats)?;
        self.stats.solves += k as u64;
        solutions.copy_from_slice(&self.ws.x);
        Ok(())
    }

    /// Effective resistances for a batch of (typically edge) pairs via
    /// **per-node solve reuse**: one solve per distinct endpoint node
    /// (`<= n`), advanced through the blocked multi-RHS path, then every
    /// pair recovered as `R(u,v) = x_u[u] - x_u[v] - x_v[u] + x_v[v]`.
    /// Results are in input order.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] for out-of-range endpoints;
    /// * [`LinalgError::Disconnected`] for a pair spanning components;
    /// * solver errors as [`SolverContext::pcg_block`].
    pub fn edge_resistances(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<f64>, LinalgError> {
        let mut out = Vec::with_capacity(pairs.len());
        self.edge_resistances_into(pairs, &mut out)?;
        Ok(out)
    }

    /// [`SolverEngine::edge_resistances`] writing into a caller-owned
    /// vector: with a warmed engine and a recycled `out`, the whole
    /// batch runs without a single heap allocation.
    ///
    /// # Errors
    ///
    /// As [`SolverEngine::edge_resistances`].
    pub fn edge_resistances_into(
        &mut self,
        pairs: &[(NodeId, NodeId)],
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        out.clear();
        for &(u, v) in pairs {
            self.ctx.check_pair(u, v)?;
        }
        let n = self.ctx.dim();
        let nc = self.ctx.comp_sizes.len();
        let ev = &mut self.ws.grow_events;

        // Distinct endpoints, sorted (solve order and lookup index).
        // Growth is detected by comparing capacity around the pushes, so
        // recycled batches of the same shape count zero events.
        let distinct = &mut self.ws.distinct;
        let cap_before = distinct.capacity();
        distinct.clear();
        for &(u, v) in pairs {
            if u != v {
                distinct.push(u);
                distinct.push(v);
            }
        }
        if distinct.capacity() > cap_before {
            *ev += 1;
        }
        distinct.sort_unstable();
        distinct.dedup();

        // Partner lists: for each distinct node `u`, the sorted set of
        // nodes whose potential entry `x_u[w]` some pair needs — always
        // `u` itself plus its pair partners.
        let incidence = &mut self.ws.incidence;
        let cap_before = incidence.capacity();
        incidence.clear();
        for &u in distinct.iter() {
            incidence.push((u, u));
        }
        for &(u, v) in pairs {
            if u != v {
                incidence.push((u, v));
                incidence.push((v, u));
            }
        }
        if incidence.capacity() > cap_before {
            *ev += 1;
        }
        incidence.sort_unstable();
        incidence.dedup();
        let offsets = &mut self.ws.partner_offsets;
        grow_with(offsets, distinct.len() + 1, 0usize, ev);
        let partners = &mut self.ws.partners;
        let cap_before = partners.capacity();
        partners.clear();
        {
            let mut pos = 0usize;
            for (di, &u) in distinct.iter().enumerate() {
                offsets[di] = pos;
                while pos < incidence.len() && incidence[pos].0 == u {
                    partners.push(incidence[pos].1);
                    pos += 1;
                }
            }
            offsets[distinct.len()] = pos;
        }
        if partners.capacity() > cap_before {
            *ev += 1;
        }
        let entries = &mut self.ws.entries;
        grow_f64(entries, partners.len(), ev);

        // Solve for each distinct endpoint's potential vector in blocks
        // of `block_width` columns, keeping only the partner entries.
        let kb = self.ctx.options.block_width.max(1);
        let mut start = 0usize;
        while start < self.ws.distinct.len() {
            let k = kb.min(self.ws.distinct.len() - start);
            self.ws.prepare(n, k, nc, false);
            for j in 0..k {
                let u = self.ws.distinct[start + j] as usize;
                self.ws.b[u * k + j] = 1.0; // e_u; projection supplies -1/|C|.
            }
            self.ctx.pcg_block(&mut self.ws, k, false, &mut self.stats)?;
            self.stats.solves += k as u64;
            for j in 0..k {
                let di = start + j;
                for slot in self.ws.partner_offsets[di]..self.ws.partner_offsets[di + 1] {
                    let w = self.ws.partners[slot] as usize;
                    self.ws.entries[slot] = self.ws.x[w * k + j];
                }
            }
            start += k;
        }

        // Recover every pair from the stored potentials.
        for &(u, v) in pairs {
            if u == v {
                out.push(0.0);
                continue;
            }
            let xu_u = self.lookup_entry(u, u);
            let xu_v = self.lookup_entry(u, v);
            let xv_u = self.lookup_entry(v, u);
            let xv_v = self.lookup_entry(v, v);
            out.push(xu_u - xu_v - xv_u + xv_v);
        }
        Ok(())
    }

    /// Effective resistances for a pair batch via **warm-started**
    /// sequential solves: pairs are processed sorted, and consecutive
    /// right-hand sides sharing a first endpoint seed CG with the
    /// previous solution. Results are in input order. Prefer
    /// [`SolverEngine::edge_resistances`] for edge batches (fewer
    /// solves); this path exists for arbitrary pair streams and for the
    /// warm-start accounting in [`SolveStats`].
    ///
    /// # Errors
    ///
    /// As [`SolverEngine::edge_resistances`].
    pub fn pair_resistances_into(
        &mut self,
        pairs: &[(NodeId, NodeId)],
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        out.clear();
        for &(u, v) in pairs {
            self.ctx.check_pair(u, v)?;
        }
        let order = &mut self.ws.order;
        grow_with(order, pairs.len(), 0u32, &mut self.ws.grow_events);
        for (i, o) in order.iter_mut().enumerate() {
            *o = i as u32;
        }
        order.sort_unstable_by_key(|&i| pairs[i as usize]);
        grow_f64(&mut self.ws.entries, pairs.len(), &mut self.ws.grow_events);

        let mut group_u: Option<NodeId> = None;
        let mut group_cold_iters = 0usize;
        for oi in 0..pairs.len() {
            let idx = self.ws.order[oi] as usize;
            let (u, v) = pairs[idx];
            if u == v {
                // Zero without a solve; the warm chain survives (the
                // workspace's last solution is untouched).
                self.ws.entries[idx] = 0.0;
                continue;
            }
            let warm = group_u == Some(u);
            let (resistance, iters) =
                self.ctx.solve_pair(&mut self.ws, u, v, warm, &mut self.stats)?;
            if warm {
                self.stats.warm_start_hits += 1;
                self.stats.warm_start_saved_iterations +=
                    group_cold_iters.saturating_sub(iters) as u64;
            } else {
                group_cold_iters = iters;
                group_u = Some(u);
            }
            self.ws.entries[idx] = resistance;
        }
        out.extend_from_slice(&self.ws.entries[..pairs.len()]);
        Ok(())
    }

    /// Stored potential entry `x_node[at]`, via binary search over the
    /// sorted distinct/partner index built by the last edge batch.
    fn lookup_entry(&self, node: NodeId, at: NodeId) -> f64 {
        let di = self
            .ws
            .distinct
            .binary_search(&node)
            .expect("invariant: every pair endpoint was inserted into distinct");
        let span = &self.ws.partners[self.ws.partner_offsets[di]..self.ws.partner_offsets[di + 1]];
        let pi = span
            .binary_search(&at)
            .expect("invariant: every queried partner was inserted into the incidence list");
        self.ws.entries[self.ws.partner_offsets[di] + pi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{effective_resistance, solve_laplacian};

    fn dense_ring(n: usize) -> Graph {
        let edges: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|i| {
                vec![
                    (i as NodeId, ((i + 1) % n) as NodeId),
                    (i as NodeId, ((i + 3) % n) as NodeId),
                ]
            })
            .collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn engine_matches_unpreconditioned_reference_on_edges() {
        let g = dense_ring(20);
        let mut engine = SolverEngine::new(&g, EngineOptions::default());
        let pairs: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
        let rs = engine.edge_resistances(&pairs).unwrap();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let reference = effective_resistance(&g, u, v, CgOptions::default()).unwrap();
            let rel = (rs[i] - reference).abs() / reference;
            assert!(rel < 1e-6, "pair ({u},{v}): engine {} vs reference {reference}", rs[i]);
        }
        assert_eq!(engine.stats().solves as usize, 20, "one solve per distinct node");
    }

    #[test]
    fn per_node_reuse_beats_per_edge_matvec_work() {
        // Circulant with 5 chord offsets: 120 edges over 24 nodes, so the
        // per-node path runs 5x fewer solves than the per-edge reference.
        let n = 24usize;
        let edges: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|i| {
                [1usize, 3, 5, 7, 9]
                    .into_iter()
                    .map(move |o| (i as NodeId, ((i + o) % n) as NodeId))
            })
            .collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let pairs: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
        let mut engine = SolverEngine::new(&g, EngineOptions::default());
        engine.edge_resistances(&pairs).unwrap();
        let node_work = engine.stats().matvec_rows;
        let mut edge_work = 0u64;
        for &(u, v) in &pairs {
            let mut b = vec![0.0; g.num_nodes()];
            b[u as usize] = 1.0;
            b[v as usize] = -1.0;
            let o = solve_laplacian(&g, &b, CgOptions::default()).unwrap();
            edge_work += (o.iterations * g.num_nodes()) as u64;
        }
        assert!(
            node_work * 3 <= edge_work,
            "per-node path {node_work} rows vs per-edge {edge_work}"
        );
    }

    #[test]
    fn steady_state_solves_do_not_allocate() {
        let g = dense_ring(16);
        let pairs: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
        let mut engine = SolverEngine::new(&g, EngineOptions::default());
        let mut out = Vec::with_capacity(pairs.len());
        engine.edge_resistances_into(&pairs, &mut out).unwrap(); // warm-up
        let warmed = out.clone();
        engine.reset_stats();
        for _ in 0..3 {
            engine.edge_resistances_into(&pairs, &mut out).unwrap();
            assert_eq!(out, warmed, "steady-state results identical");
        }
        assert_eq!(engine.stats().workspace_allocs, 0, "no steady-state growth");
    }

    #[test]
    fn disconnected_graph_solves_per_component() {
        // Two 4-cycles: resistances within each must match a standalone
        // 4-cycle (edge of a 4-cycle: 3/4 ohm).
        let g = Graph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (6, 7), (7, 4)],
        )
        .unwrap();
        let mut engine = SolverEngine::new(&g, EngineOptions::default());
        assert_eq!(engine.num_components(), 2);
        let rs = engine.edge_resistances(&[(0, 1), (4, 5)]).unwrap();
        for r in rs {
            assert!((r - 0.75).abs() < 1e-6, "4-cycle edge resistance {r}");
        }
        // Cross-component pairs are rejected.
        assert_eq!(
            engine.edge_resistances(&[(0, 4)]).unwrap_err(),
            LinalgError::Disconnected
        );
    }

    #[test]
    fn warm_start_pairs_match_and_record_savings() {
        let g = dense_ring(18);
        let mut pairs: Vec<(NodeId, NodeId)> =
            g.edges().iter().map(|e| (e.src, e.dst)).collect();
        pairs.push((2, 2)); // self pair mid-stream
        let mut engine = SolverEngine::new(&g, EngineOptions::default());
        let mut out = Vec::new();
        engine.pair_resistances_into(&pairs, &mut out).unwrap();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let reference = effective_resistance(&g, u, v, CgOptions::default()).unwrap();
            let err = (out[i] - reference).abs() / reference.max(1e-12);
            assert!(err < 1e-6, "pair ({u},{v})");
        }
        assert!(engine.stats().warm_start_hits > 0, "shared endpoints must warm start");
    }

    #[test]
    fn block_solve_matches_single_rhs_solves() {
        let g = dense_ring(12);
        let n = g.num_nodes();
        let k = 4usize;
        let mut rhs = vec![0.0; n * k];
        for j in 0..k {
            rhs[j * 3 * k + j] = 1.0;
            rhs[(j + 5) * k + j] = -1.0;
        }
        let mut engine = SolverEngine::new(&g, EngineOptions::default());
        let mut block = vec![0.0; n * k];
        engine.solve_block_into(&rhs, k, &mut block).unwrap();
        for j in 0..k {
            let col_b: Vec<f64> = (0..n).map(|v| rhs[v * k + j]).collect();
            let mut col_x = vec![0.0; n];
            let mut single = SolverEngine::new(&g, EngineOptions::default());
            single.solve_into(&col_b, &mut col_x).unwrap();
            for v in 0..n {
                assert!(
                    (block[v * k + j] - col_x[v]).abs() < 1e-7,
                    "column {j} node {v}"
                );
            }
        }
    }

    #[test]
    fn thread_invariance_bitwise_through_parallel_matvec() {
        // Force the parallel matvec on a small graph by zeroing the flop
        // threshold, then demand bitwise equality across thread counts.
        let g = dense_ring(40);
        let pairs: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
        let opts = EngineOptions { par_flop_threshold: 0, ..EngineOptions::default() };
        let run = |threads: usize| {
            splpg_par::set_num_threads(threads);
            let mut engine = SolverEngine::new(&g, opts);
            let rs = engine.edge_resistances(&pairs).unwrap();
            splpg_par::set_num_threads(0);
            rs
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four, "engine output must be bit-identical across thread counts");
    }

    #[test]
    fn out_of_range_pair_rejected() {
        let g = dense_ring(6);
        let mut engine = SolverEngine::new(&g, EngineOptions::default());
        assert!(matches!(
            engine.edge_resistances(&[(0, 99)]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solve_block_dimension_checked() {
        let g = dense_ring(6);
        let mut engine = SolverEngine::new(&g, EngineOptions::default());
        let mut out = vec![0.0; 6];
        assert!(engine.solve_block_into(&[0.0; 5], 1, &mut out).is_err());
    }
}
