//! Sparse linear algebra for graph Laplacians.
//!
//! The SpLPG paper's sparsifier (its Algorithm 1) avoids computing exact
//! effective resistances by using the degree bound of Theorem 2
//! (`r_(u,v) <= (1/d_u + 1/d_v)/gamma`, Lovász). This crate provides the
//! *exact* quantities so the approximation can be validated:
//!
//! * [`LaplacianOperator`] — matrix-free `L x` / `L_sym x` products;
//! * [`solve_laplacian`] — conjugate-gradient solve of `L x = b` projected
//!   onto the space orthogonal to the constant vector (the Laplacian's null
//!   space on a connected graph);
//! * [`effective_resistance`] — exact `r_(u,v) = (e_u - e_v)^T L^+ (e_u -
//!   e_v)` via CG (Eq. (3) of the paper);
//! * [`lambda2_normalized`] — the second-smallest eigenvalue `gamma` of the
//!   normalized Laplacian via deflated power iteration (Theorem 2's
//!   constant);
//! * [`quadratic_form`] — `x^T L x`, used to check the spectral guarantee of
//!   Theorem 1 on sparsified graphs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod jl;
mod laplacian;
mod solver;
mod spectral;

pub use engine::{CgWorkspace, EngineOptions, SolveStats, SolverEngine};
pub use jl::ResistanceEstimator;
pub use laplacian::{quadratic_form, LaplacianOperator};
pub use solver::{
    effective_resistance, effective_resistances, effective_resistances_with_stats,
    solve_laplacian, CgOptions, CgOutcome,
};
pub use spectral::{lambda2_normalized, PowerIterOptions};

/// Errors from linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Vector length does not match the operator dimension.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
    /// The routine requires a connected graph but the input is disconnected.
    Disconnected,
    /// Iteration budget exhausted before reaching the tolerance.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual norm at exit.
        residual: f64,
    },
    /// Conjugate gradient lost positive curvature (`p·Ap <= 0`): the
    /// search direction collapsed numerically and further iterations
    /// would produce garbage. Distinct from [`LinalgError::NoConvergence`]
    /// — a breakdown means the *iteration itself* is invalid, not merely
    /// slow.
    Breakdown {
        /// Iteration at which the breakdown was detected.
        iteration: usize,
        /// The offending curvature `p·Ap`.
        curvature: f64,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, actual } => {
                write!(f, "vector length {actual} does not match operator dimension {expected}")
            }
            LinalgError::Disconnected => write!(f, "graph must be connected for this operation"),
            LinalgError::NoConvergence { iterations, residual } => {
                write!(f, "no convergence after {iterations} iterations (residual {residual:e})")
            }
            LinalgError::Breakdown { iteration, curvature } => {
                write!(f, "CG breakdown at iteration {iteration}: curvature p·Ap = {curvature:e} <= 0")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Dot product of two equal-length slices.
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub(crate) fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// In-place `y += alpha * x`.
pub(crate) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Projects `v` onto the orthogonal complement of the all-ones vector
/// (removes the mean). The Laplacian's null space on a connected graph is
/// spanned by the constant vector, so CG must operate in this subspace.
pub(crate) fn remove_mean(v: &mut [f64]) {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn remove_mean_zeroes_sum() {
        let mut v = vec![1.0, 2.0, 3.0, 6.0];
        remove_mean(&mut v);
        assert!(v.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = LinalgError::NoConvergence { iterations: 10, residual: 0.5 };
        assert!(e.to_string().contains("10"));
    }
}
