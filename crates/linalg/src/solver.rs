use splpg_graph::{connected_components, Graph, NodeId};

use crate::engine::{CgWorkspace, EngineOptions, SolveStats, SolverContext};
use crate::laplacian::LaplacianOperator;
use crate::{axpy, dot, norm, remove_mean, LinalgError};

/// Options for the conjugate-gradient solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOptions {
    /// Relative residual tolerance (`||r|| / ||b||`).
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions { tolerance: 1e-8, max_iterations: 10_000 }
    }
}

/// Result of a conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOutcome {
    /// The solution vector (mean-free).
    pub solution: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Solves `L x = b` for a connected graph's Laplacian using conjugate
/// gradient, working in the subspace orthogonal to the constant vector
/// (the null space of `L`). `b` is implicitly projected (its mean removed).
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b.len() != graph.num_nodes()`;
/// * [`LinalgError::Disconnected`] if the graph is not connected (the
///   pseudo-inverse solve is ill-defined per component otherwise);
/// * [`LinalgError::NoConvergence`] if the iteration cap is reached;
/// * [`LinalgError::Breakdown`] if a search direction loses positive
///   curvature (`p·Ap <= 0`) — CG's invariants no longer hold and any
///   further iterate would be garbage, so the solve aborts instead of
///   silently clamping the denominator.
pub fn solve_laplacian(
    graph: &Graph,
    b: &[f64],
    options: CgOptions,
) -> Result<CgOutcome, LinalgError> {
    let n = graph.num_nodes();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch { expected: n, actual: b.len() });
    }
    let (_, components) = connected_components(graph);
    if components != 1 {
        return Err(LinalgError::Disconnected);
    }
    let op = LaplacianOperator::new(graph);
    let mut rhs = b.to_vec();
    remove_mean(&mut rhs);
    let b_norm = norm(&rhs).max(f64::MIN_POSITIVE);

    let mut x = vec![0.0; n];
    let mut r = rhs; // r = b - L*0
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);

    for iter in 0..options.max_iterations {
        let res = rs_old.sqrt() / b_norm;
        if res <= options.tolerance {
            return Ok(CgOutcome { solution: x, iterations: iter, residual: res });
        }
        let ap = op.apply(&p).expect("invariant: p.len() == n, checked at entry");
        let curvature = dot(&p, &ap);
        if curvature <= 0.0 {
            // The Laplacian is PSD on the mean-free subspace, so a
            // non-positive p·Ap can only come from numerical collapse of
            // the search direction. Clamping it (the old behavior) let
            // the iteration continue producing garbage — fail loudly.
            return Err(LinalgError::Breakdown { iteration: iter, curvature });
        }
        let alpha = rs_old / curvature;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        // Numerical drift can reintroduce a constant component; project.
        remove_mean(&mut r);
        let rs_new = dot(&r, &r);
        // rs_old > 0 here: the convergence check at the top of the loop
        // already returned when rs_old.sqrt() / b_norm <= tolerance.
        let beta = rs_new / rs_old;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs_old = rs_new;
    }
    let res = rs_old.sqrt() / b_norm;
    if res <= options.tolerance {
        remove_mean(&mut x);
        return Ok(CgOutcome { solution: x, iterations: options.max_iterations, residual: res });
    }
    Err(LinalgError::NoConvergence { iterations: options.max_iterations, residual: res })
}

/// Exact effective resistance `r_(u,v) = (e_u - e_v)^T L^+ (e_u - e_v)`
/// (Eq. (3) of the paper), computed with a CG solve.
///
/// # Errors
///
/// Same conditions as [`solve_laplacian`]; additionally
/// [`LinalgError::DimensionMismatch`] if an endpoint is out of range.
///
/// # Examples
///
/// ```
/// use splpg_graph::Graph;
/// use splpg_linalg::{effective_resistance, CgOptions};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two parallel length-2 paths between 0 and 3: a 4-cycle.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)])?;
/// let r = effective_resistance(&g, 0, 3, CgOptions::default())?;
/// assert!((r - 1.0).abs() < 1e-6); // two 2-ohm paths in parallel
/// # Ok(())
/// # }
/// ```
pub fn effective_resistance(
    graph: &Graph,
    u: NodeId,
    v: NodeId,
    options: CgOptions,
) -> Result<f64, LinalgError> {
    let n = graph.num_nodes();
    if (u as usize) >= n || (v as usize) >= n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            actual: u.max(v) as usize + 1,
        });
    }
    if u == v {
        return Ok(0.0);
    }
    let mut b = vec![0.0; n];
    b[u as usize] = 1.0;
    b[v as usize] = -1.0;
    let out = solve_laplacian(graph, &b, options)?;
    Ok(out.solution[u as usize] - out.solution[v as usize])
}

/// Exact effective resistances for a batch of node pairs, through the
/// Jacobi-preconditioned engine with **warm-started** solves.
///
/// Pairs are grouped by first endpoint (sorted); within a group each
/// solve seeds CG with the previous solution — the right-hand sides
/// `e_u - e_v` differ only in the sink term, so the previous potential
/// vector is an excellent initial guess. Groups fan out across the
/// global [`splpg_par`] pool; each group is solved sequentially by one
/// worker, so results are **bit-identical at every thread count**
/// (though not bit-identical to the unpreconditioned
/// [`effective_resistance`] reference — it is a different Krylov
/// iteration converging to the same answer within tolerance).
///
/// Unlike [`solve_laplacian`], disconnected graphs are supported: each
/// solve projects per connected component, and only a pair *spanning*
/// two components is an error. This is what the distributed setup path
/// needs — partition-local subgraphs keep all global node ids and are
/// never connected.
///
/// For batches of *edges* prefer [`crate::SolverEngine::edge_resistances`],
/// which additionally reuses one solve per distinct endpoint node.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] for an out-of-range endpoint,
/// [`LinalgError::Disconnected`] for a pair spanning two components
/// (checked for all pairs before any solve runs), or a solver error
/// ([`LinalgError::Breakdown`] / [`LinalgError::NoConvergence`]).
pub fn effective_resistances(
    graph: &Graph,
    pairs: &[(NodeId, NodeId)],
    options: CgOptions,
) -> Result<Vec<f64>, LinalgError> {
    effective_resistances_with_stats(graph, pairs, options).map(|(out, _)| out)
}

/// [`effective_resistances`] plus the engine's [`SolveStats`]: solve and
/// iteration counts, matvec work, warm-start hits and estimated saved
/// iterations, and workspace growth events (per-group workspaces start
/// empty, so this counts one warm-up growth burst per group).
///
/// # Errors
///
/// As [`effective_resistances`].
pub fn effective_resistances_with_stats(
    graph: &Graph,
    pairs: &[(NodeId, NodeId)],
    options: CgOptions,
) -> Result<(Vec<f64>, SolveStats), LinalgError> {
    let ctx = SolverContext::new(graph, EngineOptions::with_cg(options));
    for &(u, v) in pairs {
        ctx.check_pair(u, v)?;
    }
    // Sort pair indices so pairs sharing a first endpoint become
    // adjacent; each run is one warm-start chain.
    let mut order: Vec<u32> = (0..pairs.len() as u32).collect();
    order.sort_unstable_by_key(|&i| pairs[i as usize]);
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    while start < order.len() {
        let u = pairs[order[start] as usize].0;
        let mut end = start + 1;
        while end < order.len() && pairs[order[end] as usize].0 == u {
            end += 1;
        }
        groups.push((start, end));
        start = end;
    }
    let solved = splpg_par::global()
        .parallel_map_chunks(&groups, 1, |_, &(s, e)| solve_group(&ctx, pairs, &order[s..e]));
    let mut out = vec![0.0; pairs.len()];
    let mut stats = SolveStats::default();
    for group in solved {
        let (values, group_stats) = group?;
        for (idx, r) in values {
            out[idx as usize] = r;
        }
        stats.merge(&group_stats);
    }
    Ok((out, stats))
}

/// Solves one warm-start chain: pairs sharing a first endpoint, in
/// sorted order, each seeded with the previous solution. Returns
/// `(original index, resistance)` per pair plus the chain's stats.
fn solve_group(
    ctx: &SolverContext<'_>,
    pairs: &[(NodeId, NodeId)],
    idxs: &[u32],
) -> Result<(Vec<(u32, f64)>, SolveStats), LinalgError> {
    let mut ws = CgWorkspace::new();
    let mut stats = SolveStats::default();
    let mut values = Vec::with_capacity(idxs.len());
    let mut warm = false;
    let mut cold_iters = 0usize;
    for &idx in idxs {
        let (u, v) = pairs[idx as usize];
        if u == v {
            values.push((idx, 0.0));
            continue;
        }
        let (resistance, iters) = ctx.solve_pair(&mut ws, u, v, warm, &mut stats)?;
        if warm {
            stats.warm_start_hits += 1;
            stats.warm_start_saved_iterations += cold_iters.saturating_sub(iters) as u64;
        } else {
            cold_iters = iters;
            warm = true;
        }
        values.push((idx, resistance));
    }
    stats.workspace_allocs = ws.alloc_events();
    Ok((values, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_resistance_is_hop_count() {
        // Series resistors: r(0, k) = k on a path.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        for k in 1..5 {
            let r = effective_resistance(&g, 0, k, CgOptions::default()).unwrap();
            assert!((r - k as f64).abs() < 1e-6, "r(0,{k}) = {r}");
        }
    }

    #[test]
    fn triangle_resistance() {
        // Edge in a triangle: 1 ohm parallel with 2 ohms = 2/3.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let r = effective_resistance(&g, 0, 1, CgOptions::default()).unwrap();
        assert!((r - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn complete_graph_resistance() {
        // K_n: r(u,v) = 2/n for any pair.
        let n = 6u32;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(n as usize, &edges).unwrap();
        let r = effective_resistance(&g, 0, 5, CgOptions::default()).unwrap();
        assert!((r - 2.0 / n as f64).abs() < 1e-6);
    }

    #[test]
    fn weighted_edge_resistance() {
        // Single edge of weight 4 => conductance 4 => resistance 1/4.
        let mut b = splpg_graph::GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 4.0).unwrap();
        let g = b.build();
        let r = effective_resistance(&g, 0, 1, CgOptions::default()).unwrap();
        assert!((r - 0.25).abs() < 1e-6);
    }

    #[test]
    fn self_pair_resistance_zero() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(effective_resistance(&g, 1, 1, CgOptions::default()).unwrap(), 0.0);
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let err = effective_resistance(&g, 0, 2, CgOptions::default()).unwrap_err();
        assert_eq!(err, LinalgError::Disconnected);
    }

    #[test]
    fn solve_returns_mean_free_solution() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let mut b = vec![1.0, -1.0, 0.5, -0.5];
        remove_mean(&mut b);
        let out = solve_laplacian(&g, &b, CgOptions::default()).unwrap();
        assert!(out.solution.iter().sum::<f64>().abs() < 1e-8);
        // Verify residual: L x ~= b
        let op = LaplacianOperator::new(&g);
        let lx = op.apply(&out.solution).unwrap();
        for (a, c) in lx.iter().zip(&b) {
            assert!((a - c).abs() < 1e-6);
        }
    }

    #[test]
    fn out_of_range_endpoint_rejected() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert!(effective_resistance(&g, 0, 7, CgOptions::default()).is_err());
    }

    #[test]
    fn batch_resistances_thread_invariant_and_match_reference() {
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3), (1, 4)],
        )
        .unwrap();
        let pairs: Vec<(NodeId, NodeId)> =
            g.edges().iter().map(|e| (e.src, e.dst)).collect();
        splpg_par::set_num_threads(1);
        let one = effective_resistances(&g, &pairs, CgOptions::default()).unwrap();
        for threads in [3usize, 8] {
            splpg_par::set_num_threads(threads);
            let batch = effective_resistances(&g, &pairs, CgOptions::default()).unwrap();
            assert_eq!(batch, one, "bitwise thread invariance at {threads} threads");
        }
        splpg_par::set_num_threads(0);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let reference = effective_resistance(&g, u, v, CgOptions::default()).unwrap();
            let rel = (one[i] - reference).abs() / reference;
            assert!(rel < 1e-6, "pair ({u},{v}): engine {} vs reference {reference}", one[i]);
        }
    }

    #[test]
    fn batch_resistances_propagate_errors() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let err = effective_resistances(&g, &[(0, 2)], CgOptions::default()).unwrap_err();
        assert_eq!(err, LinalgError::Disconnected);
    }

    #[test]
    fn batch_allows_same_component_pairs_on_disconnected_graph() {
        // Two disjoint single edges: each pair is valid within its own
        // component (resistance 1), even though the graph as a whole is
        // disconnected. This is the partition-local shape dist::setup
        // produces.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let rs =
            effective_resistances(&g, &[(0, 1), (2, 3)], CgOptions::default()).unwrap();
        for r in rs {
            assert!((r - 1.0).abs() < 1e-6, "single-edge resistance {r}");
        }
    }

    #[test]
    fn batch_stats_record_warm_starts() {
        // Star around node 0: every pair shares the first endpoint, so
        // all solves after the first warm start from its solution.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]).unwrap();
        let pairs = [(0u32, 1u32), (0, 2), (0, 3), (0, 4)];
        let (rs, stats) =
            effective_resistances_with_stats(&g, &pairs, CgOptions::default()).unwrap();
        assert_eq!(rs.len(), 4);
        assert_eq!(stats.solves, 4);
        assert_eq!(stats.warm_start_hits, 3, "three of four solves share endpoint 0");
        assert!(stats.iterations > 0);
    }

    #[test]
    fn foster_theorem_on_cycle() {
        // Foster: sum of effective resistances over edges = n - 1.
        let n = 8usize;
        let edges: Vec<(NodeId, NodeId)> =
            (0..n).map(|i| (i as NodeId, ((i + 1) % n) as NodeId)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let total: f64 = g
            .edges()
            .iter()
            .map(|e| effective_resistance(&g, e.src, e.dst, CgOptions::default()).unwrap())
            .sum();
        assert!((total - (n as f64 - 1.0)).abs() < 1e-5, "Foster sum {total}");
    }
}
