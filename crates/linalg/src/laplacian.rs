use splpg_graph::{Graph, NodeId};
use splpg_par::Pool;

use crate::LinalgError;

/// Matrix-free operator for the (weighted) graph Laplacian `L = D - A` and
/// its symmetric normalization `L_sym = D^{-1/2} L D^{-1/2}`.
///
/// Edge weights of the underlying graph are honoured (the sparsifier emits
/// weighted graphs), with unweighted edges treated as weight `1.0`.
///
/// # Examples
///
/// ```
/// use splpg_graph::Graph;
/// use splpg_linalg::LaplacianOperator;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let lap = LaplacianOperator::new(&g);
/// let y = lap.apply(&[1.0, 0.0, 0.0])?;
/// assert_eq!(y, vec![1.0, -1.0, 0.0]); // L e_0
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LaplacianOperator<'g> {
    graph: &'g Graph,
    /// Weighted degree of each node.
    degrees: Vec<f64>,
}

/// Minimum estimated flops per chunk handed to a pool worker by
/// [`LaplacianOperator::apply_block_into`] — the same amortization floor
/// as `splpg-tensor`'s kernels.
const MIN_CHUNK_FLOPS: usize = 500_000;

impl<'g> LaplacianOperator<'g> {
    /// Wraps `graph` as a Laplacian operator.
    pub fn new(graph: &'g Graph) -> Self {
        let degrees = (0..graph.num_nodes() as NodeId)
            .map(|v| match graph.neighbor_weights(v) {
                Some(ws) => ws.iter().map(|&w| w as f64).sum(),
                None => graph.degree(v) as f64,
            })
            .collect();
        LaplacianOperator { graph, degrees }
    }

    /// Operator dimension (number of nodes).
    pub fn dim(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Weighted degrees `D_{v,v}`.
    pub fn degrees(&self) -> &[f64] {
        &self.degrees
    }

    fn check_dim(&self, x: &[f64]) -> Result<(), LinalgError> {
        if x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch { expected: self.dim(), actual: x.len() });
        }
        Ok(())
    }

    /// Computes `y = L x`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `x.len() != dim()`.
    pub fn apply(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut y = vec![0.0; self.dim()];
        self.apply_into(x, &mut y)?;
        Ok(y)
    }

    /// Computes `y = L x` into a caller-provided buffer — the
    /// allocation-free matvec the CG hot loop runs on (every entry of
    /// `y` is overwritten).
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if either length differs from
    /// `dim()`.
    pub fn apply_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        self.check_dim(x)?;
        self.check_dim(y)?;
        for v in 0..self.dim() {
            let nbrs = self.graph.neighbors(v as NodeId);
            let mut acc = self.degrees[v] * x[v];
            match self.graph.neighbor_weights(v as NodeId) {
                Some(ws) => {
                    for (&u, &w) in nbrs.iter().zip(ws) {
                        acc -= w as f64 * x[u as usize];
                    }
                }
                None => {
                    for &u in nbrs {
                        acc -= x[u as usize];
                    }
                }
            }
            y[v] = acc;
        }
        Ok(())
    }

    /// Multi-RHS matvec: computes `Y = L X` for a block of `k`
    /// right-hand sides stored node-major (`x[v*k + j]` is column `j`'s
    /// entry at node `v`), so one sweep over the CSR adjacency advances
    /// all `k` vectors.
    ///
    /// Only columns with `active[j] == true` are computed; inactive
    /// columns of `y` are zeroed. Output *rows* (nodes) are partitioned
    /// into contiguous ranges across `pool` — the same deterministic
    /// partitioning rule as `splpg-tensor`'s kernels — and each row's
    /// accumulation runs over the node's neighbor list in CSR order
    /// regardless of which thread owns it, so results are
    /// **bit-identical** at every thread count.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `x`/`y` are not `dim() * k`
    /// long or `active.len() != k`.
    pub fn apply_block_into(
        &self,
        x: &[f64],
        k: usize,
        active: &[bool],
        y: &mut [f64],
        pool: &Pool,
    ) -> Result<(), LinalgError> {
        let n = self.dim();
        if x.len() != n * k || y.len() != n * k {
            return Err(LinalgError::DimensionMismatch {
                expected: n * k,
                actual: if x.len() != n * k { x.len() } else { y.len() },
            });
        }
        if active.len() != k {
            return Err(LinalgError::DimensionMismatch { expected: k, actual: active.len() });
        }
        if k == 0 {
            return Ok(());
        }
        // ~4 flops per (edge, column) + 2 per (node, column); spawn only
        // when a chunk carries enough of them to amortize.
        let per_row = 2 * k * (1 + 2 * self.graph.num_edges() / n.max(1));
        let min_rows = (MIN_CHUNK_FLOPS / per_row.max(1)).max(1);
        let graph = self.graph;
        let degrees = &self.degrees;
        pool.parallel_for_mut(y, k, min_rows, |row0, chunk| {
            for (r, y_row) in chunk.chunks_mut(k).enumerate() {
                let v = row0 + r;
                let x_row = &x[v * k..(v + 1) * k];
                for j in 0..k {
                    y_row[j] = if active[j] { degrees[v] * x_row[j] } else { 0.0 };
                }
                let nbrs = graph.neighbors(v as NodeId);
                match graph.neighbor_weights(v as NodeId) {
                    Some(ws) => {
                        for (&u, &w) in nbrs.iter().zip(ws) {
                            let xu = &x[u as usize * k..(u as usize + 1) * k];
                            for j in 0..k {
                                if active[j] {
                                    // splpg-lint: allow(float-accum-in-par) — y_row is chunk-owned (rows are range-partitioned) and neighbors accumulate in fixed CSR order; pinned bit-identical by the it_solver thread-sweep tests
                                    y_row[j] -= w as f64 * xu[j];
                                }
                            }
                        }
                    }
                    None => {
                        for &u in nbrs {
                            let xu = &x[u as usize * k..(u as usize + 1) * k];
                            for j in 0..k {
                                if active[j] {
                                    // splpg-lint: allow(float-accum-in-par) — same chunk-owned row, fixed CSR neighbor order as the weighted branch above
                                    y_row[j] -= xu[j];
                                }
                            }
                        }
                    }
                }
            }
        });
        Ok(())
    }

    /// Computes `y = L_sym x` where `L_sym = D^{-1/2} L D^{-1/2}`.
    ///
    /// Isolated nodes (zero degree) contribute zero rows/columns.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `x.len() != dim()`.
    pub fn apply_normalized(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.check_dim(x)?;
        let inv_sqrt: Vec<f64> = self
            .degrees
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let scaled: Vec<f64> = x.iter().zip(&inv_sqrt).map(|(xi, s)| xi * s).collect();
        let mut y = self.apply(&scaled)?;
        for (yi, s) in y.iter_mut().zip(&inv_sqrt) {
            *yi *= s;
        }
        Ok(y)
    }
}

/// Computes the Laplacian quadratic form `x^T L x = sum_{(u,v) in E} w_{uv}
/// (x_u - x_v)^2` of `graph` at `x`.
///
/// This is the quantity bounded by Theorem 1 of the paper: a spectral
/// sparsifier satisfies `(1 - eps) x^T L x <= x^T L~ x <= (1 + eps) x^T L x`.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] if `x.len() != graph.num_nodes()`.
pub fn quadratic_form(graph: &Graph, x: &[f64]) -> Result<f64, LinalgError> {
    if x.len() != graph.num_nodes() {
        return Err(LinalgError::DimensionMismatch {
            expected: graph.num_nodes(),
            actual: x.len(),
        });
    }
    let mut total = 0.0;
    for e in graph.edges() {
        let w = graph.edge_weight(e.src, e.dst).unwrap_or(1.0) as f64;
        let d = x[e.src as usize] - x[e.dst as usize];
        total += w * d * d;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_graph::GraphBuilder;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn laplacian_annihilates_constants() {
        let g = path3();
        let lap = LaplacianOperator::new(&g);
        let y = lap.apply(&[5.0, 5.0, 5.0]).unwrap();
        assert!(y.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn laplacian_matches_dense_definition() {
        // L for path 0-1-2: [[1,-1,0],[-1,2,-1],[0,-1,1]]
        let g = path3();
        let lap = LaplacianOperator::new(&g);
        let y = lap.apply(&[1.0, 2.0, 4.0]).unwrap();
        assert_eq!(y, vec![-1.0, -1.0, 2.0]);
    }

    #[test]
    fn weighted_degrees() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 2.0).unwrap();
        b.add_weighted_edge(1, 2, 3.0).unwrap();
        let g = b.build();
        let lap = LaplacianOperator::new(&g);
        assert_eq!(lap.degrees(), &[2.0, 5.0, 3.0]);
    }

    #[test]
    fn quadratic_form_matches_operator() {
        let g = path3();
        let lap = LaplacianOperator::new(&g);
        let x = vec![0.3, -1.2, 2.0];
        let lx = lap.apply(&x).unwrap();
        let via_op: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
        let direct = quadratic_form(&g, &x).unwrap();
        assert!((via_op - direct).abs() < 1e-10);
    }

    #[test]
    fn normalized_annihilates_sqrt_degree_vector() {
        let g = path3();
        let lap = LaplacianOperator::new(&g);
        // Null vector of L_sym is D^{1/2} 1.
        let x: Vec<f64> = lap.degrees().iter().map(|d| d.sqrt()).collect();
        let y = lap.apply_normalized(&x).unwrap();
        assert!(y.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn dimension_checked() {
        let g = path3();
        let lap = LaplacianOperator::new(&g);
        assert!(lap.apply(&[1.0]).is_err());
        assert!(quadratic_form(&g, &[1.0]).is_err());
    }

    #[test]
    fn apply_into_matches_apply_and_checks_dims() {
        let g = path3();
        let lap = LaplacianOperator::new(&g);
        let x = vec![1.0, 2.0, 4.0];
        let mut y = vec![f64::NAN; 3];
        lap.apply_into(&x, &mut y).unwrap();
        assert_eq!(y, lap.apply(&x).unwrap());
        assert!(lap.apply_into(&x, &mut [0.0; 2]).is_err());
    }

    #[test]
    fn block_matvec_matches_columnwise_apply_bitwise() {
        let mut b = GraphBuilder::new(5);
        b.add_weighted_edge(0, 1, 2.0).unwrap();
        b.add_weighted_edge(1, 2, 0.5).unwrap();
        b.add_weighted_edge(2, 3, 3.0).unwrap();
        b.add_weighted_edge(3, 4, 1.0).unwrap();
        b.add_weighted_edge(4, 0, 1.5).unwrap();
        let g = b.build();
        let lap = LaplacianOperator::new(&g);
        let (n, k) = (5usize, 3usize);
        // Node-major block whose columns are distinct test vectors.
        let x: Vec<f64> = (0..n * k).map(|i| (i as f64) * 0.37 - 1.0).collect();
        let active = vec![true; k];
        let mut y1 = vec![0.0; n * k];
        let mut y4 = vec![0.0; n * k];
        lap.apply_block_into(&x, k, &active, &mut y1, &Pool::new(1)).unwrap();
        lap.apply_block_into(&x, k, &active, &mut y4, &Pool::new(4)).unwrap();
        assert_eq!(y1, y4, "block matvec must be thread-invariant bitwise");
        for j in 0..k {
            let col: Vec<f64> = (0..n).map(|v| x[v * k + j]).collect();
            let want = lap.apply(&col).unwrap();
            for v in 0..n {
                assert_eq!(y1[v * k + j], want[v], "column {j} node {v}");
            }
        }
    }

    #[test]
    fn block_matvec_masks_inactive_columns() {
        let g = path3();
        let lap = LaplacianOperator::new(&g);
        let k = 2usize;
        let x = vec![1.0; 3 * k];
        let mut y = vec![f64::NAN; 3 * k];
        lap.apply_block_into(&x, k, &[false, true], &mut y, &Pool::new(1)).unwrap();
        for v in 0..3 {
            assert_eq!(y[v * k], 0.0, "inactive column zeroed");
        }
        assert!(lap.apply_block_into(&x, 3, &[true; 2], &mut y, &Pool::new(1)).is_err());
    }

    #[test]
    fn isolated_nodes_zero_row() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let lap = LaplacianOperator::new(&g);
        let y = lap.apply_normalized(&[0.0, 0.0, 9.0]).unwrap();
        assert_eq!(y[2], 0.0);
    }
}
