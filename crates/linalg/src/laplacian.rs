use splpg_graph::{Graph, NodeId};

use crate::LinalgError;

/// Matrix-free operator for the (weighted) graph Laplacian `L = D - A` and
/// its symmetric normalization `L_sym = D^{-1/2} L D^{-1/2}`.
///
/// Edge weights of the underlying graph are honoured (the sparsifier emits
/// weighted graphs), with unweighted edges treated as weight `1.0`.
///
/// # Examples
///
/// ```
/// use splpg_graph::Graph;
/// use splpg_linalg::LaplacianOperator;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let lap = LaplacianOperator::new(&g);
/// let y = lap.apply(&[1.0, 0.0, 0.0])?;
/// assert_eq!(y, vec![1.0, -1.0, 0.0]); // L e_0
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LaplacianOperator<'g> {
    graph: &'g Graph,
    /// Weighted degree of each node.
    degrees: Vec<f64>,
}

impl<'g> LaplacianOperator<'g> {
    /// Wraps `graph` as a Laplacian operator.
    pub fn new(graph: &'g Graph) -> Self {
        let degrees = (0..graph.num_nodes() as NodeId)
            .map(|v| match graph.neighbor_weights(v) {
                Some(ws) => ws.iter().map(|&w| w as f64).sum(),
                None => graph.degree(v) as f64,
            })
            .collect();
        LaplacianOperator { graph, degrees }
    }

    /// Operator dimension (number of nodes).
    pub fn dim(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Weighted degrees `D_{v,v}`.
    pub fn degrees(&self) -> &[f64] {
        &self.degrees
    }

    fn check_dim(&self, x: &[f64]) -> Result<(), LinalgError> {
        if x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch { expected: self.dim(), actual: x.len() });
        }
        Ok(())
    }

    /// Computes `y = L x`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `x.len() != dim()`.
    pub fn apply(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.check_dim(x)?;
        let mut y = vec![0.0; self.dim()];
        for v in 0..self.dim() {
            let nbrs = self.graph.neighbors(v as NodeId);
            let mut acc = self.degrees[v] * x[v];
            match self.graph.neighbor_weights(v as NodeId) {
                Some(ws) => {
                    for (&u, &w) in nbrs.iter().zip(ws) {
                        acc -= w as f64 * x[u as usize];
                    }
                }
                None => {
                    for &u in nbrs {
                        acc -= x[u as usize];
                    }
                }
            }
            y[v] = acc;
        }
        Ok(y)
    }

    /// Computes `y = L_sym x` where `L_sym = D^{-1/2} L D^{-1/2}`.
    ///
    /// Isolated nodes (zero degree) contribute zero rows/columns.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `x.len() != dim()`.
    pub fn apply_normalized(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.check_dim(x)?;
        let inv_sqrt: Vec<f64> = self
            .degrees
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let scaled: Vec<f64> = x.iter().zip(&inv_sqrt).map(|(xi, s)| xi * s).collect();
        let mut y = self.apply(&scaled)?;
        for (yi, s) in y.iter_mut().zip(&inv_sqrt) {
            *yi *= s;
        }
        Ok(y)
    }
}

/// Computes the Laplacian quadratic form `x^T L x = sum_{(u,v) in E} w_{uv}
/// (x_u - x_v)^2` of `graph` at `x`.
///
/// This is the quantity bounded by Theorem 1 of the paper: a spectral
/// sparsifier satisfies `(1 - eps) x^T L x <= x^T L~ x <= (1 + eps) x^T L x`.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] if `x.len() != graph.num_nodes()`.
pub fn quadratic_form(graph: &Graph, x: &[f64]) -> Result<f64, LinalgError> {
    if x.len() != graph.num_nodes() {
        return Err(LinalgError::DimensionMismatch {
            expected: graph.num_nodes(),
            actual: x.len(),
        });
    }
    let mut total = 0.0;
    for e in graph.edges() {
        let w = graph.edge_weight(e.src, e.dst).unwrap_or(1.0) as f64;
        let d = x[e.src as usize] - x[e.dst as usize];
        total += w * d * d;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_graph::GraphBuilder;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn laplacian_annihilates_constants() {
        let g = path3();
        let lap = LaplacianOperator::new(&g);
        let y = lap.apply(&[5.0, 5.0, 5.0]).unwrap();
        assert!(y.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn laplacian_matches_dense_definition() {
        // L for path 0-1-2: [[1,-1,0],[-1,2,-1],[0,-1,1]]
        let g = path3();
        let lap = LaplacianOperator::new(&g);
        let y = lap.apply(&[1.0, 2.0, 4.0]).unwrap();
        assert_eq!(y, vec![-1.0, -1.0, 2.0]);
    }

    #[test]
    fn weighted_degrees() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 2.0).unwrap();
        b.add_weighted_edge(1, 2, 3.0).unwrap();
        let g = b.build();
        let lap = LaplacianOperator::new(&g);
        assert_eq!(lap.degrees(), &[2.0, 5.0, 3.0]);
    }

    #[test]
    fn quadratic_form_matches_operator() {
        let g = path3();
        let lap = LaplacianOperator::new(&g);
        let x = vec![0.3, -1.2, 2.0];
        let lx = lap.apply(&x).unwrap();
        let via_op: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
        let direct = quadratic_form(&g, &x).unwrap();
        assert!((via_op - direct).abs() < 1e-10);
    }

    #[test]
    fn normalized_annihilates_sqrt_degree_vector() {
        let g = path3();
        let lap = LaplacianOperator::new(&g);
        // Null vector of L_sym is D^{1/2} 1.
        let x: Vec<f64> = lap.degrees().iter().map(|d| d.sqrt()).collect();
        let y = lap.apply_normalized(&x).unwrap();
        assert!(y.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn dimension_checked() {
        let g = path3();
        let lap = LaplacianOperator::new(&g);
        assert!(lap.apply(&[1.0]).is_err());
        assert!(quadratic_form(&g, &[1.0]).is_err());
    }

    #[test]
    fn isolated_nodes_zero_row() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let lap = LaplacianOperator::new(&g);
        let y = lap.apply_normalized(&[0.0, 0.0, 9.0]).unwrap();
        assert_eq!(y[2], 0.0);
    }
}
