//! Comment- and string-aware scanning of Rust source.
//!
//! The rule engine must not fire on tokens that appear inside comments,
//! doc examples, or string literals (a diagnostic message that *mentions*
//! `HashMap` is not a `HashMap` use). This module performs one pass over
//! the source and produces, per line:
//!
//! * `code` — the line with every comment character and every string
//!   *content* character replaced by a space (string delimiters are kept,
//!   so `.expect("` remains recognizable). `code` has exactly one
//!   character per source character, so char columns line up with `raw`.
//! * `comment` — the concatenated comment text of the line, used to find
//!   `// splpg-lint: allow(<rule>)` pragmas.
//! * `strings` — the string literals opening on the line, with their
//!   contents, so rules can inspect e.g. `.expect(...)` messages.
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` item
//!   (detected by brace matching on the masked code).
//!
//! The lexer understands line comments, nested block comments, plain and
//! raw (hash-delimited) string literals, byte strings, character literals
//! and lifetimes. It is intentionally not a full Rust lexer: anything it
//! cannot classify stays visible to the rules, which errs on the side of
//! flagging (the allow pragma is the escape hatch).

/// One analyzed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line as written (without the trailing newline).
    pub raw: String,
    /// Comment/string-masked code, aligned with `raw` char-for-char.
    pub code: String,
    /// Concatenated comment text appearing on this line.
    pub comment: String,
    /// String literals opening on this line: (char column of the opening
    /// quote, literal contents without delimiters).
    pub strings: Vec<(usize, String)>,
    /// Whether the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A fully analyzed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Lines in order; line numbers are `index + 1`.
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* */`.
    BlockComment(u32),
    /// Inside `"…"`; tracks a pending escape.
    Str { escaped: bool },
    /// Inside `r"…"` / `r#"…"#`; the number of `#`s.
    RawStr { hashes: usize },
}

impl SourceFile {
    /// Analyzes `source` into masked lines.
    pub fn analyze(source: &str) -> SourceFile {
        let chars: Vec<char> = source.chars().collect();
        let mut lines: Vec<Line> = Vec::new();
        let mut raw = String::new();
        let mut code = String::new();
        let mut comment = String::new();
        let mut strings: Vec<(usize, String)> = Vec::new();
        let mut cur_string = String::new();
        let mut col = 0usize;
        let mut state = State::Code;

        let flush =
            |raw: &mut String, code: &mut String, comment: &mut String, strings: &mut Vec<(usize, String)>, lines: &mut Vec<Line>| {
                lines.push(Line {
                    raw: std::mem::take(raw),
                    code: std::mem::take(code),
                    comment: std::mem::take(comment),
                    strings: std::mem::take(strings),
                    in_test: false,
                });
            };

        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c == '\n' {
                // A string may legally span lines; its remaining content
                // lands on the following lines' buffers.
                if state == State::LineComment {
                    state = State::Code;
                }
                if !cur_string.is_empty() || matches!(state, State::Str { .. } | State::RawStr { .. }) {
                    if let Some(last) = strings.last_mut() {
                        last.1.push_str(&cur_string);
                    }
                    cur_string.clear();
                }
                flush(&mut raw, &mut code, &mut comment, &mut strings, &mut lines);
                col = 0;
                i += 1;
                continue;
            }
            raw.push(c);
            match state {
                State::Code => {
                    let next = chars.get(i + 1).copied();
                    let prev_ident = col > 0
                        && code
                            .chars()
                            .last()
                            .is_some_and(|p| p.is_alphanumeric() || p == '_');
                    if c == '/' && next == Some('/') {
                        state = State::LineComment;
                        code.push(' ');
                        comment.push(c);
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(1);
                        code.push(' ');
                        comment.push(c);
                    } else if c == '"' && !prev_ident {
                        state = State::Str { escaped: false };
                        code.push('"');
                        strings.push((col, String::new()));
                    } else if c == '"' && code.ends_with('b') {
                        // b"…" byte string: the `b` was already emitted.
                        state = State::Str { escaped: false };
                        code.push('"');
                        strings.push((col, String::new()));
                    } else if (c == 'r' || c == 'b') && !prev_ident && is_raw_string_start(&chars, i) {
                        // r"…", r#"…"#, br"…": consume the prefix up to and
                        // including the opening quote.
                        let mut j = i;
                        let mut hashes = 0usize;
                        while chars.get(j).copied() == Some('r') || chars.get(j).copied() == Some('b')
                        {
                            j += 1;
                        }
                        while chars.get(j).copied() == Some('#') {
                            hashes += 1;
                            j += 1;
                        }
                        // chars[j] is the opening quote.
                        for &p in &chars[i + 1..=j] {
                            raw.push(p);
                        }
                        for _ in i..j {
                            code.push(' ');
                        }
                        code.push('"');
                        strings.push((col + (j - i), String::new()));
                        col += j - i;
                        i = j;
                        state = State::RawStr { hashes };
                    } else if c == '\'' {
                        // Char literal vs lifetime.
                        if next == Some('\\') {
                            // '\n', '\u{..}', … — scan to the closing quote.
                            let mut j = i + 2;
                            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                                j += 1;
                            }
                            for &p in &chars[i + 1..=j.min(chars.len() - 1)] {
                                if p != '\n' {
                                    raw.push(p);
                                }
                            }
                            for _ in i..=j {
                                code.push(' ');
                            }
                            col += j - i;
                            i = j;
                        } else if chars.get(i + 2).copied() == Some('\'') && next != Some('\'') {
                            // 'x'
                            raw.push(next.unwrap_or(' '));
                            raw.push('\'');
                            code.push_str("   ");
                            col += 2;
                            i += 2;
                        } else {
                            // Lifetime: keep visible.
                            code.push(c);
                        }
                    } else {
                        code.push(c);
                    }
                }
                State::LineComment => {
                    code.push(' ');
                    comment.push(c);
                }
                State::BlockComment(depth) => {
                    let next = chars.get(i + 1).copied();
                    code.push(' ');
                    comment.push(c);
                    if c == '*' && next == Some('/') {
                        raw.push('/');
                        code.push(' ');
                        comment.push('/');
                        col += 1;
                        i += 1;
                        state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    } else if c == '/' && next == Some('*') {
                        raw.push('*');
                        code.push(' ');
                        comment.push('*');
                        col += 1;
                        i += 1;
                        state = State::BlockComment(depth + 1);
                    }
                }
                State::Str { escaped } => {
                    if escaped {
                        code.push(' ');
                        cur_string.push(c);
                        state = State::Str { escaped: false };
                    } else if c == '\\' {
                        code.push(' ');
                        cur_string.push(c);
                        state = State::Str { escaped: true };
                    } else if c == '"' {
                        code.push('"');
                        if let Some(last) = strings.last_mut() {
                            last.1.push_str(&cur_string);
                        }
                        cur_string.clear();
                        state = State::Code;
                    } else {
                        code.push(' ');
                        cur_string.push(c);
                    }
                }
                State::RawStr { hashes } => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        for k in 0..hashes {
                            raw.push(chars[i + 1 + k]);
                        }
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        if let Some(last) = strings.last_mut() {
                            last.1.push_str(&cur_string);
                        }
                        cur_string.clear();
                        col += hashes;
                        i += hashes;
                        state = State::Code;
                    } else {
                        code.push(' ');
                        cur_string.push(c);
                    }
                }
            }
            col += 1;
            i += 1;
        }
        if !raw.is_empty() || lines.is_empty() {
            if let Some(last) = strings.last_mut() {
                last.1.push_str(&cur_string);
            }
            flush(&mut raw, &mut code, &mut comment, &mut strings, &mut lines);
        }

        let mut file = SourceFile { lines };
        file.mark_test_regions();
        file
    }

    /// Marks lines inside `#[cfg(test)]` items by brace matching on the
    /// masked code. An attribute that reaches a `;` before any `{` (e.g.
    /// `#[cfg(test)] mod tests;`) marks only its own line.
    fn mark_test_regions(&mut self) {
        const NEEDLE: &str = "#[cfg(test)]";
        let starts: Vec<usize> = self
            .lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.code.contains(NEEDLE))
            .map(|(i, _)| i)
            .collect();
        for start in starts {
            let from_col = self.lines[start].code.find(NEEDLE).map(|b| b + NEEDLE.len());
            let mut depth = 0i64;
            let mut entered = false;
            let mut end = start;
            'outer: for li in start..self.lines.len() {
                let code = &self.lines[li].code;
                let skip = if li == start { from_col.unwrap_or(0) } else { 0 };
                for ch in code.chars().skip(skip) {
                    match ch {
                        '{' => {
                            depth += 1;
                            entered = true;
                        }
                        '}' => {
                            depth -= 1;
                            if entered && depth == 0 {
                                end = li;
                                break 'outer;
                            }
                        }
                        ';' if !entered => {
                            end = li;
                            break 'outer;
                        }
                        _ => {}
                    }
                }
                end = li;
            }
            for line in &mut self.lines[start..=end] {
                line.in_test = true;
            }
        }
    }
}

/// Whether `chars[i]` begins a raw (or raw-byte) string literal prefix.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    let mut saw_r = false;
    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') {
        saw_r |= chars[j] == 'r';
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    if !saw_r {
        return false;
    }
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    j < chars.len() && chars[j] == '"'
}

/// Whether the quote at `chars[i]` is followed by `hashes` `#`s, closing a
/// raw string.
fn closes_raw_string(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k).copied() == Some('#'))
}

/// Finds whole-word occurrences of `needle` in `haystack` (neighbors must
/// not be identifier characters). Returns byte offsets.
pub fn find_word(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = haystack.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after = at + needle.len();
        let after_ok = after >= bytes.len() || {
            let b = bytes[after];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_masked() {
        let f = SourceFile::analyze("let x = 1; // HashMap here\nlet y = 2;\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap"));
        assert!(f.lines[0].code.contains("let x = 1;"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = SourceFile::analyze("a /* one /* two */ still */ b\n/* open\nHashMap\n*/ c\n");
        assert!(f.lines[0].code.contains('a'));
        assert!(f.lines[0].code.contains('b'));
        assert!(!f.lines[0].code.contains("still"));
        assert!(!f.lines[2].code.contains("HashMap"));
        assert!(f.lines[3].code.contains('c'));
    }

    #[test]
    fn string_contents_masked_but_quotes_kept() {
        let f = SourceFile::analyze("let s = \"HashMap::new()\";\n");
        let code = &f.lines[0].code;
        assert!(!code.contains("HashMap"));
        assert!(code.contains('"'));
        assert_eq!(f.lines[0].strings.len(), 1);
        assert_eq!(f.lines[0].strings[0].1, "HashMap::new()");
    }

    #[test]
    fn escaped_quotes_do_not_close() {
        let f = SourceFile::analyze(r#"let s = "a\"b"; let t = 1;"#);
        assert!(f.lines[0].code.contains("let t = 1;"));
        assert_eq!(f.lines[0].strings[0].1, r#"a\"b"#);
    }

    #[test]
    fn raw_strings_masked() {
        let f = SourceFile::analyze("let s = r#\"thread::spawn\"#; let u = 2;\n");
        assert!(!f.lines[0].code.contains("thread::spawn"));
        assert!(f.lines[0].code.contains("let u = 2;"));
        assert_eq!(f.lines[0].strings[0].1, "thread::spawn");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = SourceFile::analyze("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }\n");
        let code = &f.lines[0].code;
        assert!(code.contains("fn f<'a>"), "lifetime survives: {code}");
        // Char-literal quote must not open a string that swallows the rest.
        assert!(code.contains("let d ="));
    }

    #[test]
    fn code_aligns_with_raw() {
        let src = "let m = \"abc\"; // tail\n";
        let f = SourceFile::analyze(src);
        assert_eq!(f.lines[0].raw.chars().count(), f.lines[0].code.chars().count());
    }

    #[test]
    fn cfg_test_region_marked() {
        let src = "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\npub fn after() {}\n";
        let f = SourceFile::analyze(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_declaration_only() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let f = SourceFile::analyze(src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn find_word_respects_boundaries() {
        assert_eq!(find_word("HashMap<..>", "HashMap").len(), 1);
        assert_eq!(find_word("MyHashMap", "HashMap").len(), 0);
        assert_eq!(find_word("HashMaps", "HashMap").len(), 0);
        assert_eq!(find_word("a HashMap b HashMap", "HashMap").len(), 2);
    }
}
