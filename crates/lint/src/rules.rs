//! The rule set.
//!
//! Every rule has a stable kebab-case name (used in diagnostics and in
//! `// splpg-lint: allow(<rule>) — <reason>` pragmas), a scope over the
//! workspace, and a runner over a fully analyzed file
//! ([`FileAnalysis`]: masked lines + token tree + parallel-region mask).
//! Line rules still match masked text; the determinism dataflow rules
//! (`float-accum-in-par`, `rng-not-derived`) and the loop rules read the
//! token tree and the symbol pass's parallel marks. See DESIGN.md
//! § "Correctness tooling" for the rationale behind each rule.

use crate::lexer::{find_word, Line, SourceFile};
use crate::symbols;
use crate::tree::{TokenKind, TokenTree};
use std::cell::Cell;

/// A single violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule name.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Crates whose library code must be bit-reproducible run to run: hash
/// containers (randomized iteration order *per process*) are banned there.
pub const DETERMINISTIC_CRATES: &[&str] = &["graph", "gnn", "dist", "net", "partition", "sparsify"];

/// Stable names of every rule, in reporting order.
pub const RULE_NAMES: &[&str] = &[
    RULE_HASH_ITER,
    RULE_THREAD_SPAWN,
    RULE_WALLCLOCK,
    RULE_UNWRAP,
    RULE_FORBID_UNSAFE,
    RULE_PRINT_MACRO,
    RULE_TAPE_IN_LOOP,
    RULE_ALLOC_IN_HOT_LOOP,
    RULE_FLOAT_ACCUM_IN_PAR,
    RULE_RNG_NOT_DERIVED,
    RULE_NET_CALL_NO_TIMEOUT,
    RULE_AS_CAST_TRUNCATION,
    RULE_STALE_PRAGMA,
];

pub const RULE_HASH_ITER: &str = "hash-iter";
pub const RULE_THREAD_SPAWN: &str = "thread-spawn";
pub const RULE_WALLCLOCK: &str = "wallclock";
pub const RULE_UNWRAP: &str = "unwrap-expect";
pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
pub const RULE_PRINT_MACRO: &str = "print-macro";
pub const RULE_TAPE_IN_LOOP: &str = "tape-in-loop";
pub const RULE_ALLOC_IN_HOT_LOOP: &str = "alloc-in-hot-loop";
pub const RULE_FLOAT_ACCUM_IN_PAR: &str = "float-accum-in-par";
pub const RULE_RNG_NOT_DERIVED: &str = "rng-not-derived";
pub const RULE_NET_CALL_NO_TIMEOUT: &str = "net-call-no-timeout";
pub const RULE_AS_CAST_TRUNCATION: &str = "as-cast-truncation";
pub const RULE_STALE_PRAGMA: &str = "stale-pragma";

/// Files whose loop bodies are sampling/kernel hot paths: fresh `Vec`s
/// per iteration there defeat the reusable-scratch design.
pub const HOT_LOOP_FILES: &[&str] = &[
    "crates/gnn/src/sampler.rs",
    "crates/tensor/src/kernels.rs",
    "crates/tensor/src/segment.rs",
];

/// The sanctioned deterministic-reduction helpers: these files implement
/// the fixed-order parallel accumulation the rest of the workspace is
/// told to call instead of rolling its own (`float-accum-in-par`).
/// Their per-chunk accumulators are row-owned with a deterministic merge,
/// pinned by the thread-count-invariance tests.
pub const SANCTIONED_REDUCTION_FILES: &[&str] =
    &["crates/tensor/src/kernels.rs", "crates/tensor/src/segment.rs"];

/// The timeout/retry wrapper layer around `Transport`: the only files in
/// `dist`/`net` allowed to touch raw `send`/`recv` (`net-call-no-timeout`).
pub const NET_WRAPPER_FILES: &[&str] = &[
    "crates/net/src/transport.rs",
    "crates/net/src/cluster.rs",
    "crates/net/src/fault.rs",
    "crates/net/src/tcp.rs",
    "crates/net/src/process.rs",
    "crates/net/src/conformance.rs",
    "crates/net/src/shm.rs",
    "crates/dist/src/runtime.rs",
];

/// The only files allowed to contain `unsafe` code (`forbid-unsafe`):
/// the shared-memory feature bus, whose mmap/raw-pointer plumbing cannot
/// be expressed safely. Each block there still needs its own
/// `// splpg-lint: allow(forbid-unsafe) — reason` pragma, and the owning
/// crate's root downgrades to `#![deny(unsafe_code)]` (so the carve-out
/// stays an explicit per-module `#[allow]`, not a crate-wide licence).
pub const SANCTIONED_UNSAFE_FILES: &[&str] = &["crates/net/src/shm.rs"];

/// Hot indexing paths where a silent narrowing `as` cast can corrupt
/// node/edge ids on large graphs (`as-cast-truncation`).
pub const CAST_HOT_FILES: &[&str] = &[
    "crates/tensor/src/kernels.rs",
    "crates/tensor/src/segment.rs",
    "crates/gnn/src/sampler.rs",
    "crates/net/src/compress.rs",
];

/// One-line description per rule (for `splpg-lint rules`).
pub fn describe(rule: &str) -> &'static str {
    match rule {
        RULE_HASH_ITER => {
            "no std HashMap/HashSet in library code of deterministic crates \
             (graph, gnn, dist, net, partition, sparsify): hash iteration \
             order is randomized per process and silently breaks run-to-run \
             reproducibility — use BTreeMap/BTreeSet or index vectors"
        }
        RULE_THREAD_SPAWN => {
            "no std::thread::spawn/scope outside splpg-par and splpg-net: \
             ad-hoc threads bypass the deterministic fork-join pool (par) \
             and the cluster actor runtime (net) and their thread-count \
             invariance guarantees"
        }
        RULE_WALLCLOCK => {
            "no std::time::Instant/SystemTime outside crates/bench: wall-clock \
             reads in library code make outputs timing-dependent; measure in \
             the bench harness instead"
        }
        RULE_UNWRAP => {
            "no .unwrap() and no bare .expect(…) in non-test library code of \
             I/O- and solver-facing crates (graph::io, linalg, datasets): \
             return Result, or document the invariant with \
             .expect(\"invariant: …\")"
        }
        RULE_FORBID_UNSAFE => {
            "every crate root must carry #![forbid(unsafe_code)] — except \
             crates hosting a sanctioned-unsafe module (net/src/shm.rs), \
             whose root carries #![deny(unsafe_code)] instead; `unsafe` \
             tokens are banned everywhere outside the sanctioned list, and \
             inside it every block needs a per-block \
             `splpg-lint: allow(forbid-unsafe) — reason` pragma"
        }
        RULE_PRINT_MACRO => {
            "no println!/eprintln!/print!/eprint! in library code outside \
             crates/bench: libraries return data, binaries print it"
        }
        RULE_TAPE_IN_LOOP => {
            "no Tape::new() inside a loop body in library code: a fresh \
             tape per iteration reallocates the whole autodiff working set \
             every step — hoist one Tape out of the loop and let reset() \
             recycle its arena (allow with a reason where a cold-start \
             tape per iteration is the point)"
        }
        RULE_ALLOC_IN_HOT_LOOP => {
            "no Vec::new()/vec![…] inside loop bodies of sampling/kernel hot \
             paths (gnn/sampler.rs, tensor/kernels.rs, tensor/segment.rs): \
             per-iteration empty Vecs reallocate from cold every hop — reuse \
             scratch buffers, or Vec::with_capacity for output-owned arrays \
             sized once before the loop"
        }
        RULE_FLOAT_ACCUM_IN_PAR => {
            "no order-sensitive `+=`/`-=` into indexed or deref targets \
             inside parallel regions (closures reachable from the splpg-par \
             entry points): float addition is non-associative, so reduction \
             order varies with thread count and breaks bit-determinism — \
             accumulate into chunk-owned rows merged in fixed order, or call \
             the sanctioned reduction kernels in tensor::kernels/segment"
        }
        RULE_RNG_NOT_DERIVED => {
            "no RNG construction (seed_from_u64, SplitMix64::new) inside \
             loops or parallel regions, and no manual seed mixing \
             (`^`/`<<`/wrapping_*) anywhere in library code: per-item \
             streams must come from splpg_rng::derive_stream(seed, stream), \
             which is order- and thread-count-independent by construction"
        }
        RULE_NET_CALL_NO_TIMEOUT => {
            "no raw Transport send/recv/recv_timeout in dist/net outside the \
             timeout/retry wrapper layer (net/transport.rs, net/cluster.rs, \
             net/fault.rs, dist/runtime.rs): a bare recv deadlocks the \
             quorum protocol on a dropped frame — go through the wrappers' \
             retry ladder"
        }
        RULE_AS_CAST_TRUNCATION => {
            "no narrowing `as` casts (as u8/u16/u32/i8/i16/i32) in kernel \
             and sampler hot paths: an oversized node/edge id silently \
             wraps — use try_from with a documented invariant, or widen \
             the type"
        }
        RULE_STALE_PRAGMA => {
            "every `splpg-lint: allow(…)` pragma must suppress at least one \
             diagnostic: stale pragmas hide the absence of a problem and rot \
             into misleading documentation — delete them when the code they \
             excused is gone"
        }
        _ => "unknown rule",
    }
}

/// Scope facts about the file being checked, derived from its path.
#[derive(Debug, Clone)]
pub struct FileScope {
    /// Directory name under `crates/` (e.g. `graph`), if any.
    pub crate_name: Option<String>,
    /// Whether the file is a binary target (`src/bin/**` or `src/main.rs`).
    pub is_binary: bool,
    /// Whether the file is the crate root (`src/lib.rs`).
    pub is_crate_root: bool,
}

impl FileScope {
    /// Derives the scope from a `/`-separated workspace-relative path.
    pub fn of(path: &str) -> FileScope {
        let crate_name = path
            .split('/')
            .skip_while(|s| *s != "crates")
            .nth(1)
            .map(str::to_string);
        let is_binary = path.contains("/src/bin/") || path.ends_with("/src/main.rs");
        let is_crate_root = path.ends_with("/src/lib.rs");
        FileScope { crate_name, is_binary, is_crate_root }
    }

    fn in_crate(&self, name: &str) -> bool {
        self.crate_name.as_deref() == Some(name)
    }
}

/// One `allow`/`allow-file` pragma occurrence, with usage tracking for
/// the `stale-pragma` rule.
#[derive(Debug)]
pub struct PragmaEntry {
    /// 0-based line the pragma comment sits on.
    pub line: usize,
    /// The rule name it names.
    pub rule: String,
    /// `allow-file(…)`: suppresses on every line of the file.
    pub file_wide: bool,
    used: Cell<bool>,
}

/// All pragmas of one file.
#[derive(Debug, Default)]
pub struct Pragmas {
    /// Entries in source order (one per rule name named in a pragma).
    pub entries: Vec<PragmaEntry>,
}

impl Pragmas {
    /// Parses `splpg-lint: allow(rule-a, rule-b)` and
    /// `splpg-lint: allow-file(rule)` pragmas out of each line's comment
    /// text.
    pub fn collect(file: &SourceFile) -> Pragmas {
        let mut entries = Vec::new();
        for (idx, line) in file.lines.iter().enumerate() {
            // Doc comments never carry pragmas: they *describe* the
            // pragma syntax (this crate's own docs included) without
            // enacting it.
            let head = line.raw.trim_start();
            if head.starts_with("///") || head.starts_with("//!") {
                continue;
            }
            let mut rest = line.comment.as_str();
            while let Some(at) = rest.find("splpg-lint:") {
                rest = &rest[at + "splpg-lint:".len()..];
                let trimmed = rest.trim_start();
                let (file_wide, args_after) = if let Some(a) = trimmed.strip_prefix("allow-file(") {
                    (true, Some(a))
                } else if let Some(a) = trimmed.strip_prefix("allow(") {
                    (false, Some(a))
                } else {
                    (false, None)
                };
                if let Some(args) = args_after {
                    if let Some(close) = args.find(')') {
                        for name in args[..close].split(',') {
                            entries.push(PragmaEntry {
                                line: idx,
                                rule: name.trim().to_string(),
                                file_wide,
                                used: Cell::new(false),
                            });
                        }
                        rest = &args[close..];
                        continue;
                    }
                }
                rest = trimmed;
            }
        }
        Pragmas { entries }
    }

    /// Whether a diagnostic for `rule` on line `idx` is suppressed.
    ///
    /// Scoping is deliberately narrow: a pragma covers its own line, or
    /// the line directly below when the pragma stands alone on a
    /// comment-only line, or the whole file for `allow-file`. Matching
    /// entries are marked used (feeding `stale-pragma`).
    pub fn allowed(&self, file: &SourceFile, idx: usize, rule: &str) -> bool {
        let mut hit = false;
        for e in &self.entries {
            if e.rule != rule {
                continue;
            }
            let applies = e.file_wide
                || e.line == idx
                || (e.line + 1 == idx && file.lines[e.line].code.trim().is_empty());
            if applies {
                e.used.set(true);
                hit = true;
            }
        }
        hit
    }
}

/// A fully analyzed file: every pass's output, ready for the rules.
pub struct FileAnalysis {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// Path-derived scope facts.
    pub scope: FileScope,
    /// Masked lines.
    pub file: SourceFile,
    /// Token tree with scope annotations.
    pub tree: TokenTree,
    /// Pragmas, with usage tracking.
    pub pragmas: Pragmas,
    /// Per-token "inside a parallel region" mask (symbol pass output),
    /// aligned with `tree.tokens`.
    pub in_par: Vec<bool>,
}

impl FileAnalysis {
    /// Analyzes one file in isolation: the parallel-region mask is
    /// computed from this file alone (workspace scans use the cross-file
    /// symbol pass in `lib.rs` instead).
    pub fn single(path: &str, source: &str) -> FileAnalysis {
        let file = SourceFile::analyze(source);
        let tree = TokenTree::build(&file);
        let scope = FileScope::of(path);
        let in_par = {
            let unit = symbols::FileUnit {
                path,
                crate_name: scope.crate_name.as_deref(),
                file: &file,
                tree: &tree,
            };
            symbols::parallel_marks(std::slice::from_ref(&unit)).pop().unwrap_or_default()
        };
        let pragmas = Pragmas::collect(&file);
        FileAnalysis { path: path.to_string(), scope, file, tree, pragmas, in_par }
    }

    /// Pushes a diagnostic on 0-based line `idx` unless a pragma covers it.
    fn push(&self, out: &mut Vec<Diagnostic>, idx: usize, rule: &'static str, message: String) {
        if !self.pragmas.allowed(&self.file, idx, rule) {
            out.push(Diagnostic { path: self.path.clone(), line: idx + 1, rule, message });
        }
    }

    /// Token text at `i`, or `""` past the end.
    fn tok(&self, i: usize) -> &str {
        self.tree.tokens.get(i).map_or("", |t| t.text.as_str())
    }

    /// Whether tokens at `i..` match `seq` exactly.
    fn seq(&self, i: usize, seq: &[&str]) -> bool {
        seq.iter().enumerate().all(|(k, s)| self.tok(i + k) == *s)
    }
}

/// A named rule and its runner. Runners are independent so the CLI can
/// time each rule separately (`--timings`).
pub struct Rule {
    /// Stable kebab-case name.
    pub name: &'static str,
    /// The checker.
    pub run: fn(&FileAnalysis, &mut Vec<Diagnostic>),
}

/// Every rule except `stale-pragma`, which must run after all others
/// (it reads the pragma usage the other rules record).
pub const RULES: &[Rule] = &[
    Rule { name: RULE_HASH_ITER, run: hash_iter },
    Rule { name: RULE_THREAD_SPAWN, run: thread_spawn },
    Rule { name: RULE_WALLCLOCK, run: wallclock },
    Rule { name: RULE_UNWRAP, run: unwrap_expect },
    Rule { name: RULE_FORBID_UNSAFE, run: forbid_unsafe },
    Rule { name: RULE_PRINT_MACRO, run: print_macro },
    Rule { name: RULE_TAPE_IN_LOOP, run: tape_in_loop },
    Rule { name: RULE_ALLOC_IN_HOT_LOOP, run: alloc_in_hot_loop },
    Rule { name: RULE_FLOAT_ACCUM_IN_PAR, run: float_accum_in_par },
    Rule { name: RULE_RNG_NOT_DERIVED, run: rng_not_derived },
    Rule { name: RULE_NET_CALL_NO_TIMEOUT, run: net_call_no_timeout },
    Rule { name: RULE_AS_CAST_TRUNCATION, run: as_cast_truncation },
];

/// Runs every rule (then the stale-pragma pass) over one analyzed file.
pub fn check_analysis(a: &FileAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in RULES {
        (rule.run)(a, &mut out);
    }
    stale_pragmas(a, &mut out);
    out.sort_by(|x, y| x.line.cmp(&y.line).then_with(|| x.rule.cmp(y.rule)));
    out
}

// ---------------------------------------------------------------------
// Line rules (masked-text matching).
// ---------------------------------------------------------------------

fn each_library_line(a: &FileAnalysis) -> impl Iterator<Item = (usize, &Line)> {
    a.file.lines.iter().enumerate().filter(|(_, l)| !l.in_test)
}

fn hash_iter(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    let applies =
        a.scope.crate_name.as_deref().is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));
    if !applies {
        return;
    }
    for (idx, line) in each_library_line(a) {
        for token in ["HashMap", "HashSet"] {
            if !find_word(&line.code, token).is_empty() {
                a.push(
                    out,
                    idx,
                    RULE_HASH_ITER,
                    format!(
                        "{token} in a deterministic crate: hash iteration order is \
                         randomized per process; use BTreeMap/BTreeSet or an index \
                         vector (or allow with a determinism argument)"
                    ),
                );
            }
        }
    }
}

fn thread_spawn(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    // par hosts the fork-join pool; net hosts the long-lived cluster
    // actors. All other crates must route threads through one of the two.
    if a.scope.in_crate("par") || a.scope.in_crate("net") {
        return;
    }
    for (idx, line) in each_library_line(a) {
        for token in ["thread::spawn", "thread::scope"] {
            if line.code.contains(token) {
                a.push(
                    out,
                    idx,
                    RULE_THREAD_SPAWN,
                    format!(
                        "{token} outside splpg-par/splpg-net: route parallel work \
                         through the global pool (or cluster actors through \
                         splpg-net) so thread-count invariance holds"
                    ),
                );
                break;
            }
        }
    }
}

fn wallclock(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    if a.scope.in_crate("bench") {
        return;
    }
    for (idx, line) in each_library_line(a) {
        for token in ["Instant", "SystemTime"] {
            if !find_word(&line.code, token).is_empty() {
                a.push(
                    out,
                    idx,
                    RULE_WALLCLOCK,
                    format!(
                        "std::time::{token} outside crates/bench: wall-clock reads \
                         make library output timing-dependent"
                    ),
                );
                break;
            }
        }
    }
}

fn unwrap_expect(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    let applies = a.path.ends_with("crates/graph/src/io.rs")
        || a.scope.in_crate("linalg")
        || a.scope.in_crate("datasets");
    if !applies {
        return;
    }
    for (idx, line) in each_library_line(a) {
        if line.code.contains(".unwrap()") {
            a.push(
                out,
                idx,
                RULE_UNWRAP,
                ".unwrap() in I/O/solver-facing library code: propagate a Result \
                 or document the invariant with .expect(\"invariant: …\")"
                    .to_string(),
            );
        }
        // .expect(…) must carry a message starting with "invariant:". The
        // literal contents live in `line.strings`; find the string opening
        // right after the call's parenthesis.
        let mut from = 0usize;
        while let Some(pos) = line.code[from..].find(".expect(") {
            let open = from + pos + ".expect(".len();
            let col = line.code[..open].chars().count()
                + line.code[open..].chars().take_while(|c| *c == ' ').count();
            let msg = line
                .strings
                .iter()
                .find(|(c, _)| *c == col)
                .map(|(_, s)| s.trim_start());
            let ok = msg.is_some_and(|m| m.starts_with("invariant:"));
            if !ok {
                a.push(
                    out,
                    idx,
                    RULE_UNWRAP,
                    ".expect(…) without an \"invariant: …\" message in I/O/solver-\
                     facing library code: state the invariant or propagate a Result"
                        .to_string(),
                );
            }
            from = open;
        }
    }
}

fn print_macro(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    if a.scope.in_crate("bench") || a.scope.is_binary {
        return;
    }
    for (idx, line) in each_library_line(a) {
        for token in ["println!", "eprintln!", "print!", "eprint!"] {
            let bare = &token[..token.len() - 1];
            if find_word(&line.code, bare)
                .into_iter()
                .any(|at| line.code[at + bare.len()..].starts_with('!'))
            {
                a.push(
                    out,
                    idx,
                    RULE_PRINT_MACRO,
                    format!("{token} in library code: return data to the caller; only bench and bin targets print"),
                );
                break;
            }
        }
    }
}

fn forbid_unsafe(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    // A crate that hosts a sanctioned-unsafe module cannot `forbid` at the
    // root (the attribute is unoverridable), so its root must `deny` and
    // the sanctioned module alone carries the `#[allow]`.
    let crate_sanctioned = SANCTIONED_UNSAFE_FILES
        .iter()
        .any(|p| FileScope::of(p).crate_name == a.scope.crate_name);
    if a.scope.is_crate_root {
        let want = if crate_sanctioned {
            "#![deny(unsafe_code)]"
        } else {
            "#![forbid(unsafe_code)]"
        };
        if !a.file.lines.iter().any(|l| l.code.contains(want)) {
            a.push(out, 0, RULE_FORBID_UNSAFE, format!("crate root is missing {want}"));
        }
    }
    let sanctioned = SANCTIONED_UNSAFE_FILES.contains(&a.path.as_str());
    if sanctioned {
        // The carve-out is per block, never file-wide, and every pragma
        // must state its reason after the closing paren. Neither check is
        // itself suppressible — a pragma cannot excuse its own misuse.
        for e in &a.pragmas.entries {
            if e.rule != RULE_FORBID_UNSAFE {
                continue;
            }
            if e.file_wide {
                out.push(Diagnostic {
                    path: a.path.clone(),
                    line: e.line + 1,
                    rule: RULE_FORBID_UNSAFE,
                    message: "allow-file(forbid-unsafe) is not sanctioned: each \
                              unsafe block needs its own allow(forbid-unsafe) \
                              pragma with a reason"
                        .to_string(),
                });
            }
            let comment = a.file.lines[e.line].comment.as_str();
            let reason = comment
                .split("forbid-unsafe")
                .nth(1)
                .and_then(|rest| rest.split_once(')'))
                .map_or("", |(_, after)| after);
            if !reason.chars().any(|c| c.is_alphabetic()) {
                out.push(Diagnostic {
                    path: a.path.clone(),
                    line: e.line + 1,
                    rule: RULE_FORBID_UNSAFE,
                    message: "allow(forbid-unsafe) pragma without a reason: \
                              state why this block cannot be safe, e.g. \
                              `// splpg-lint: allow(forbid-unsafe) — <reason>`"
                        .to_string(),
                });
            }
        }
    }
    for i in 0..a.tree.tokens.len() {
        if a.tok(i) != "unsafe" {
            continue;
        }
        let idx = a.tree.tokens[i].line;
        if sanctioned {
            // Suppressible only by a per-block `allow` pragma on this line
            // or alone on the line above (whose reason the loop above
            // already vetted) — never by `allow-file`, which would defeat
            // the block-by-block accounting.
            let mut covered = false;
            for e in &a.pragmas.entries {
                let applies = e.rule == RULE_FORBID_UNSAFE
                    && !e.file_wide
                    && (e.line == idx
                        || (e.line + 1 == idx && a.file.lines[e.line].code.trim().is_empty()));
                if applies {
                    e.used.set(true);
                    covered = true;
                }
            }
            if !covered {
                out.push(Diagnostic {
                    path: a.path.clone(),
                    line: idx + 1,
                    rule: RULE_FORBID_UNSAFE,
                    message: "unsafe block without a \
                              `splpg-lint: allow(forbid-unsafe) — reason` pragma"
                        .to_string(),
                });
            }
        } else {
            // Unsuppressible anywhere else: unsafe code belongs in the
            // sanctioned module list or not in this workspace at all.
            out.push(Diagnostic {
                path: a.path.clone(),
                line: idx + 1,
                rule: RULE_FORBID_UNSAFE,
                message: "unsafe code outside the sanctioned modules \
                          (net/src/shm.rs): wrap the operation behind the \
                          shared-memory bus API or keep it safe"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Tree rules (token-tree scope matching).
// ---------------------------------------------------------------------

/// Flags `Tape::new()` inside loop bodies of non-test library code: a
/// fresh tape per iteration defeats the arena — its buffers are rebuilt
/// from cold every step instead of being recycled by `Tape::reset()`.
fn tape_in_loop(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    if a.scope.is_binary {
        // Binaries may build throwaway tapes (e.g. a bench's cold-start
        // baseline measures exactly that cost).
        return;
    }
    for i in 0..a.tree.tokens.len() {
        if a.seq(i, &["Tape", "::", "new"])
            && a.tree.ctx[i].loop_depth > 0
            && !a.tree.in_test(&a.file, i)
        {
            a.push(
                out,
                a.tree.tokens[i].line,
                RULE_TAPE_IN_LOOP,
                "Tape::new() inside a loop body: hoist the tape out \
                 of the loop and call reset() per iteration so its \
                 arena is recycled instead of reallocated"
                    .to_string(),
            );
        }
    }
}

/// Flags `Vec::new()` / `vec![…]` inside loop bodies of the sampling and
/// kernel hot paths ([`HOT_LOOP_FILES`]): a fresh empty Vec per frontier
/// node or row block regrows from zero capacity every iteration — exactly
/// the allocation churn the reusable scratch buffers exist to absorb.
/// `Vec::with_capacity` (sized once from known totals) is allowed.
fn alloc_in_hot_loop(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    if !HOT_LOOP_FILES.iter().any(|f| a.path.ends_with(f)) {
        return;
    }
    for i in 0..a.tree.tokens.len() {
        let hit = if a.seq(i, &["Vec", "::", "new"]) {
            Some("Vec::new()")
        } else if a.seq(i, &["vec", "!"]) {
            Some("vec![…]")
        } else {
            None
        };
        let Some(token) = hit else { continue };
        if a.tree.ctx[i].loop_depth > 0 && !a.tree.in_test(&a.file, i) {
            a.push(
                out,
                a.tree.tokens[i].line,
                RULE_ALLOC_IN_HOT_LOOP,
                format!(
                    "{token} inside a hot-loop body: reuse a scratch \
                     buffer or hoist a with_capacity allocation out of \
                     the loop"
                ),
            );
        }
    }
}

/// Flags order-sensitive `+=`/`-=` accumulation inside parallel regions.
///
/// Fires when the target is an indexed (`buf[i] += …`) or dereferenced
/// (`*slot += …`) place — the shapes shared output takes — and skips
/// plain-variable and field targets (chunk-local accumulators) and
/// bare integer-literal increments (counters, associative regardless of
/// order). The sanctioned reduction files are exempt wholesale: they
/// *are* the deterministic implementation everyone else is told to call.
fn float_accum_in_par(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    if SANCTIONED_REDUCTION_FILES.iter().any(|f| a.path.ends_with(f)) {
        return;
    }
    if a.scope.is_binary || a.scope.in_crate("bench") {
        return;
    }
    for i in 0..a.tree.tokens.len() {
        let t = &a.tree.tokens[i];
        if !(t.text == "+=" || t.text == "-=") || !a.in_par[i] || a.tree.in_test(&a.file, i) {
            continue;
        }
        // `count += 1` style: integer-literal RHS is order-insensitive.
        let rhs_int_literal = a
            .tree
            .tokens
            .get(i + 1)
            .is_some_and(|r| r.kind == TokenKind::Number && !r.text.contains('.'))
            && matches!(a.tok(i + 2), ";" | "}" | "");
        if rhs_int_literal {
            continue;
        }
        if accum_target_is_shared(a, i) {
            a.push(
                out,
                t.line,
                RULE_FLOAT_ACCUM_IN_PAR,
                format!(
                    "`{}` into an indexed/deref target inside a parallel region: \
                     float reduction order varies with thread count and breaks \
                     bit-determinism — accumulate into chunk-owned buffers merged \
                     in fixed order, or use the tensor::kernels/segment reduction \
                     helpers",
                    t.text
                ),
            );
        }
    }
}

/// Walks the assignment target left of the `+=`/`-=` at `i`: true when
/// it indexes (`…[…]`) or starts with a deref (`*…`).
fn accum_target_is_shared(a: &FileAnalysis, i: usize) -> bool {
    let toks = &a.tree.tokens;
    let mut has_index = false;
    let mut start = i;
    let mut j = i;
    while let Some(p) = j.checked_sub(1) {
        let t = &toks[p];
        match t.text.as_str() {
            "]" => match a.tree.partner[p] {
                Some(open) => {
                    has_index = true;
                    start = open;
                    j = open;
                }
                None => break,
            },
            "." | "::" | "*" => {
                start = p;
                j = p;
            }
            _ if t.kind == TokenKind::Ident || t.kind == TokenKind::Number => {
                start = p;
                j = p;
            }
            _ => break,
        }
    }
    has_index || toks[start].text == "*"
}

/// Flags RNG construction in the wrong place or by the wrong means.
///
/// Per-item randomness must come from `derive_stream(seed, stream)`
/// (order- and thread-count-independent by construction); building a
/// generator inside a loop or parallel region, or hand-mixing a seed
/// with `^`/`<<`/`wrapping_*`, reinvents stream derivation ad hoc —
/// exactly how two call sites end up with correlated or order-dependent
/// streams. `splpg-rng` itself (where `derive_stream` lives) and bench
/// code are exempt.
fn rng_not_derived(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    if a.scope.in_crate("rng") || a.scope.in_crate("bench") || a.scope.is_binary {
        return;
    }
    for i in 0..a.tree.tokens.len() {
        let (what, open) = if a.tok(i) == "seed_from_u64" && a.tok(i + 1) == "(" {
            ("seed_from_u64", i + 1)
        } else if a.seq(i, &["SplitMix64", "::", "new", "("]) {
            ("SplitMix64::new", i + 3)
        } else {
            continue;
        };
        if a.tree.in_test(&a.file, i) {
            continue;
        }
        let in_loop = a.tree.ctx[i].loop_depth > 0;
        let in_par = a.in_par[i];
        let mixed = a.tree.partner[open].is_some_and(|close| {
            a.tree.tokens[open + 1..close].iter().any(|t| {
                t.text == "^" || t.text == "<<" || t.text.starts_with("wrapping_")
            })
        });
        if in_loop || in_par || mixed {
            let where_ = if in_par {
                "inside a parallel region"
            } else if in_loop {
                "inside a loop body"
            } else {
                "from a hand-mixed seed"
            };
            a.push(
                out,
                a.tree.tokens[i].line,
                RULE_RNG_NOT_DERIVED,
                format!(
                    "{what} {where_}: derive per-item streams with \
                     splpg_rng::derive_stream(seed, stream) instead of \
                     reconstructing or hand-mixing generators — derived \
                     streams are order- and thread-count-independent"
                ),
            );
        }
    }
}

/// Flags raw `Transport` traffic outside the wrapper layer.
///
/// In `dist`/`net`, every `.send(…)`/`.recv(…)`/`.recv_timeout(…)` must
/// go through the timeout/retry wrappers ([`NET_WRAPPER_FILES`]): a bare
/// `recv` hangs the quorum protocol forever on the first dropped frame
/// the fault injector (or a real network) produces.
fn net_call_no_timeout(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    if !(a.scope.in_crate("dist") || a.scope.in_crate("net")) {
        return;
    }
    if NET_WRAPPER_FILES.iter().any(|f| a.path.ends_with(f)) {
        return;
    }
    for i in 0..a.tree.tokens.len() {
        let name = a.tok(i);
        if !matches!(name, "send" | "recv" | "recv_timeout") {
            continue;
        }
        let prev_dot = i.checked_sub(1).is_some_and(|p| a.tok(p) == ".");
        if prev_dot && a.tok(i + 1) == "(" && !a.tree.in_test(&a.file, i) {
            a.push(
                out,
                a.tree.tokens[i].line,
                RULE_NET_CALL_NO_TIMEOUT,
                format!(
                    ".{name}(…) outside the transport wrapper layer: raw \
                     sends/receives bypass the timeout/retry ladder and \
                     deadlock on the first dropped frame — route through \
                     net::cluster / dist::runtime"
                ),
            );
        }
    }
}

/// Flags narrowing `as` casts in the kernel/sampler hot paths
/// ([`CAST_HOT_FILES`]): `idx as u32` silently wraps past 2^32 — on the
/// OGB-scale graphs the paper targets that is a real id, not a bug that
/// announces itself. `try_from` + documented invariant, or a wider type.
fn as_cast_truncation(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    if !CAST_HOT_FILES.iter().any(|f| a.path.ends_with(f)) {
        return;
    }
    for i in 0..a.tree.tokens.len() {
        if a.tok(i) != "as" || a.tree.tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let target = a.tok(i + 1);
        if NARROW.contains(&target) && !a.tree.in_test(&a.file, i) {
            a.push(
                out,
                a.tree.tokens[i].line,
                RULE_AS_CAST_TRUNCATION,
                format!(
                    "narrowing `as {target}` cast in a hot indexing path \
                     silently truncates oversized ids: use \
                     {target}::try_from(…) with a documented invariant, or \
                     widen the type"
                ),
            );
        }
    }
}

/// Reports pragmas that suppressed nothing. Runs after every other rule
/// (their [`Pragmas::allowed`] calls record usage). A pragma naming
/// `stale-pragma` is never itself reported stale, and test code may keep
/// illustrative pragmas.
pub fn stale_pragmas(a: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    for e in &a.pragmas.entries {
        if e.rule == RULE_STALE_PRAGMA || e.used.get() {
            continue;
        }
        if a.file.lines.get(e.line).is_some_and(|l| l.in_test) {
            continue;
        }
        if a.pragmas.allowed(&a.file, e.line, RULE_STALE_PRAGMA) {
            continue;
        }
        let kind = if e.file_wide { "allow-file" } else { "allow" };
        out.push(Diagnostic {
            path: a.path.clone(),
            line: e.line + 1,
            rule: RULE_STALE_PRAGMA,
            message: format!(
                "{kind}({}) suppresses nothing: the code it excused is gone \
                 (or the rule name is misspelled) — delete the pragma",
                e.rule
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        check_analysis(&FileAnalysis::single(path, src))
    }

    #[test]
    fn scope_extracts_crate_name() {
        let s = FileScope::of("crates/graph/src/io.rs");
        assert_eq!(s.crate_name.as_deref(), Some("graph"));
        assert!(!s.is_binary);
        let b = FileScope::of("crates/bench/src/bin/fig03.rs");
        assert!(b.is_binary);
        assert!(FileScope::of("crates/gnn/src/lib.rs").is_crate_root);
    }

    #[test]
    fn same_line_pragma_suppresses() {
        let src = "#![forbid(unsafe_code)]\nuse std::collections::HashMap; // splpg-lint: allow(hash-iter) — lookup only, never iterated\n";
        assert!(diags("crates/graph/src/lib.rs", src).is_empty());
    }

    #[test]
    fn preceding_line_pragma_suppresses() {
        let src = "#![forbid(unsafe_code)]\n// splpg-lint: allow(hash-iter) — lookup only\nuse std::collections::HashMap;\n";
        assert!(diags("crates/graph/src/lib.rs", src).is_empty());
    }

    #[test]
    fn pragma_two_lines_above_does_not_suppress() {
        let src = "#![forbid(unsafe_code)]\n// splpg-lint: allow(hash-iter) — too far away\nfn pad() {}\nuse std::collections::HashMap;\n";
        let d = diags("crates/graph/src/lib.rs", src);
        assert!(d.iter().any(|d| d.rule == RULE_HASH_ITER), "{d:?}");
        assert!(d.iter().any(|d| d.rule == RULE_STALE_PRAGMA), "{d:?}");
    }

    #[test]
    fn allow_file_pragma_covers_whole_file() {
        let src = "#![forbid(unsafe_code)]\n// splpg-lint: allow-file(hash-iter) — id interner, lookup only\nuse std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        assert!(diags("crates/graph/src/lib.rs", src).is_empty());
    }

    #[test]
    fn stale_pragma_fires_when_nothing_suppressed() {
        let src = "#![forbid(unsafe_code)]\n// splpg-lint: allow(wallclock) — removed long ago\nfn f() {}\n";
        let d = diags("crates/graph/src/lib.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_STALE_PRAGMA);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn stale_pragma_fires_on_misspelled_rule() {
        let src = "#![forbid(unsafe_code)]\nuse std::collections::HashMap; // splpg-lint: allow(hash-itre) — typo\n";
        let d = diags("crates/graph/src/lib.rs", src);
        let rules: Vec<_> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RULE_HASH_ITER), "{d:?}");
        assert!(rules.contains(&RULE_STALE_PRAGMA), "{d:?}");
    }

    #[test]
    fn thread_scope_allowed_in_par_and_net_only() {
        let src = "#![forbid(unsafe_code)]\nstd::thread::scope(|s| s.spawn(|| {}));\n";
        assert!(diags("crates/par/src/lib.rs", src).is_empty());
        assert!(diags("crates/net/src/cluster.rs", src).is_empty());
        let d = diags("crates/dist/src/trainer.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_THREAD_SPAWN);
    }

    #[test]
    fn hash_iter_covers_net() {
        let src = "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\n";
        let d = diags("crates/net/src/codec.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_HASH_ITER);
    }

    #[test]
    fn tape_new_in_loop_fires() {
        for header in ["for b in batches {", "while run {", "loop {"] {
            let src = format!(
                "#![forbid(unsafe_code)]\nfn f() {{\n    {header}\n        let mut tape = Tape::new();\n    }}\n}}\n"
            );
            let d = diags("crates/gnn/src/trainer.rs", &src);
            assert_eq!(d.len(), 1, "{header}: {d:?}");
            assert_eq!(d[0].rule, RULE_TAPE_IN_LOOP);
            assert_eq!(d[0].line, 4);
        }
    }

    #[test]
    fn tape_new_outside_loop_is_fine() {
        let src = "#![forbid(unsafe_code)]\nfn f() {\n    let mut tape = Tape::new();\n    for b in batches {\n        tape.reset();\n    }\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn tape_in_loop_skips_tests_binaries_and_impl_for() {
        let in_test = "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n    fn t() {\n        for i in 0..3 {\n            let mut tape = Tape::new();\n        }\n    }\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", in_test).is_empty());
        let in_bin = "fn main() {\n    for i in 0..3 {\n        let t = Tape::new();\n    }\n}\n";
        assert!(diags("crates/bench/src/bin/train_step.rs", in_bin).is_empty());
        // `impl Trait for Type` must not be mistaken for a loop header.
        let impl_for = "#![forbid(unsafe_code)]\nimpl Builder for Factory {\n    fn build(&self) -> Tape {\n        Tape::new()\n    }\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", impl_for).is_empty());
        // Higher-ranked `for<'a>` bounds are not loops either.
        let hrtb = "#![forbid(unsafe_code)]\nfn f(g: impl for<'a> Fn(&'a u32)) {\n    let t = Tape::new();\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", hrtb).is_empty());
    }

    #[test]
    fn tape_in_loop_sees_nested_fn_boundary() {
        // A fn defined inside a loop body resets loop context: its body
        // is not "in the loop" (brace counting got this wrong).
        let src = "#![forbid(unsafe_code)]\nfn f() {\n    for i in 0..3 {\n        fn helper() -> Tape {\n            Tape::new()\n        }\n    }\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn tape_in_loop_pragma_suppresses() {
        let src = "#![forbid(unsafe_code)]\nfn f() {\n    for i in 0..3 {\n        // splpg-lint: allow(tape-in-loop) — cold-start cost is the measurement\n        let t = Tape::new();\n    }\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn alloc_in_hot_loop_fires_for_vec_new_and_vec_macro() {
        for alloc in ["let mut buf = Vec::new();", "let zs = vec![0.0; n];"] {
            let src = format!(
                "#![forbid(unsafe_code)]\nfn f() {{\n    for v in frontier {{\n        {alloc}\n    }}\n}}\n"
            );
            for path in HOT_LOOP_FILES {
                let d = diags(path, &src);
                assert_eq!(d.len(), 1, "{alloc} in {path}: {d:?}");
                assert_eq!(d[0].rule, RULE_ALLOC_IN_HOT_LOOP);
                assert_eq!(d[0].line, 4);
            }
        }
    }

    #[test]
    fn alloc_in_hot_loop_scoped_to_hot_files_and_loops() {
        // Outside a loop body: with_capacity-style hoisting is the point,
        // but even a bare Vec::new at fn scope is once-per-call, not per-hop.
        let outside = "#![forbid(unsafe_code)]\nfn f() {\n    let mut buf = Vec::new();\n    for v in frontier {\n        buf.clear();\n    }\n}\n";
        assert!(diags("crates/gnn/src/sampler.rs", outside).is_empty());
        // Same pattern in a non-hot file is not this rule's business.
        let in_loop = "#![forbid(unsafe_code)]\nfn f() {\n    for v in frontier {\n        let mut buf = Vec::new();\n    }\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", in_loop).is_empty());
        // Test modules may allocate freely.
        let in_test = "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n    fn t() {\n        for i in 0..3 {\n            let v = vec![i];\n        }\n    }\n}\n";
        assert!(diags("crates/gnn/src/sampler.rs", in_test).is_empty());
        // `Vec::with_capacity` never matches the `Vec::new` token.
        let with_cap = "#![forbid(unsafe_code)]\nfn f() {\n    for v in frontier {\n        let mut buf = Vec::with_capacity(n);\n    }\n}\n";
        assert!(diags("crates/gnn/src/sampler.rs", with_cap).is_empty());
    }

    #[test]
    fn alloc_in_hot_loop_pragma_suppresses() {
        let src = "#![forbid(unsafe_code)]\nfn f() {\n    for v in frontier {\n        // splpg-lint: allow(alloc-in-hot-loop) — sized exactly once, moved into the batch\n        let buf = Vec::new();\n    }\n}\n";
        assert!(diags("crates/gnn/src/sampler.rs", src).is_empty());
    }

    #[test]
    fn float_accum_fires_in_inline_parallel_closure() {
        let src = "#![forbid(unsafe_code)]\nfn f(pool: &Pool) {\n    pool.parallel_for(n, 1, |i| {\n        out[i % 4] += x[i];\n    });\n}\n";
        let d = diags("crates/linalg/src/laplacian.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_FLOAT_ACCUM_IN_PAR);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn float_accum_skips_chunk_local_and_counters() {
        // Plain-variable and field targets are chunk-local accumulators;
        // integer-literal increments are order-insensitive counters.
        let src = "#![forbid(unsafe_code)]\nfn f(pool: &Pool) {\n    pool.parallel_for(n, 1, |i| {\n        acc += x[i];\n        stats.count += 1;\n    });\n}\n";
        assert!(diags("crates/linalg/src/laplacian.rs", src).is_empty());
    }

    #[test]
    fn float_accum_exempts_sanctioned_reduction_files() {
        let src = "#![forbid(unsafe_code)]\nfn f(pool: &Pool) {\n    pool.parallel_for(n, 1, |i| {\n        out[i] += x[i];\n    });\n}\n";
        for path in SANCTIONED_REDUCTION_FILES {
            assert!(diags(path, src).is_empty(), "{path}");
        }
    }

    #[test]
    fn float_accum_outside_parallel_region_is_fine() {
        let src = "#![forbid(unsafe_code)]\nfn f() {\n    for i in 0..n {\n        out[i] += x[i];\n    }\n}\n";
        assert!(diags("crates/linalg/src/laplacian.rs", src).is_empty());
    }

    #[test]
    fn rng_fires_in_loop_and_on_mixed_seed() {
        let in_loop = "#![forbid(unsafe_code)]\nfn f(seed: u64) {\n    for i in 0..n {\n        let mut rng = Xoshiro256pp::seed_from_u64(seed);\n    }\n}\n";
        let d = diags("crates/gnn/src/negative.rs", in_loop);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_RNG_NOT_DERIVED);
        let mixed = "#![forbid(unsafe_code)]\nfn f(seed: u64, w: u64) {\n    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ w << 32);\n}\n";
        let d = diags("crates/dist/src/trainer.rs", mixed);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_RNG_NOT_DERIVED);
    }

    #[test]
    fn rng_plain_top_level_seed_is_fine() {
        let src = "#![forbid(unsafe_code)]\nfn f(seed: u64) {\n    let mut rng = Xoshiro256pp::seed_from_u64(seed);\n}\n";
        assert!(diags("crates/dist/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn rng_exempts_rng_crate_itself() {
        let src = "#![forbid(unsafe_code)]\nfn derive_stream(seed: u64, s: u64) {\n    for i in 0..4 {\n        let mut mix = SplitMix64::new(seed ^ s.wrapping_mul(K));\n    }\n}\n";
        assert!(diags("crates/rng/src/lib.rs", src).is_empty());
    }

    #[test]
    fn net_call_fires_outside_wrapper_files() {
        let src = "#![forbid(unsafe_code)]\nfn f(port: &mut WorkerPort) {\n    let frame = port.recv().expect(\"frame\");\n    port.send(frame).expect(\"send\");\n}\n";
        let d = diags("crates/dist/src/strategies.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == RULE_NET_CALL_NO_TIMEOUT));
    }

    #[test]
    fn net_call_allowed_in_wrapper_layer_and_other_crates() {
        let src = "#![forbid(unsafe_code)]\nfn f(port: &mut WorkerPort) {\n    let frame = port.recv();\n}\n";
        for path in NET_WRAPPER_FILES {
            assert!(diags(path, src).is_empty(), "{path}");
        }
        // mpsc channels in par are not transport traffic.
        assert!(diags("crates/par/src/lib.rs", src).is_empty());
    }

    #[test]
    fn as_cast_fires_in_hot_files_only() {
        let src = "#![forbid(unsafe_code)]\nfn f(i: usize) -> u32 {\n    i as u32\n}\n";
        for path in CAST_HOT_FILES {
            let d = diags(path, src);
            assert_eq!(d.len(), 1, "{path}: {d:?}");
            assert_eq!(d[0].rule, RULE_AS_CAST_TRUNCATION);
        }
        assert!(diags("crates/graph/src/csr.rs", src).is_empty());
    }

    #[test]
    fn as_cast_widening_is_fine() {
        let src = "#![forbid(unsafe_code)]\nfn f(i: u32) {\n    let a = i as usize;\n    let b = i as u64;\n    let c = i as f32;\n}\n";
        assert!(diags("crates/gnn/src/sampler.rs", src).is_empty());
    }

    #[test]
    fn pragma_for_other_rule_does_not_suppress() {
        let src = "#![forbid(unsafe_code)]\nuse std::collections::HashMap; // splpg-lint: allow(wallclock) — wrong rule\n";
        let d = diags("crates/graph/src/lib.rs", src);
        let rules: Vec<_> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RULE_HASH_ITER), "{d:?}");
        // And the useless wallclock pragma is itself flagged.
        assert!(rules.contains(&RULE_STALE_PRAGMA), "{d:?}");
    }
}
