//! The rule set.
//!
//! Every rule has a stable kebab-case name (used in diagnostics and in
//! `// splpg-lint: allow(<rule>) — <reason>` pragmas), a scope over the
//! workspace, and a line matcher that runs on comment/string-masked code.
//! See DESIGN.md § "Correctness tooling" for the rationale behind each.

use crate::lexer::{find_word, Line, SourceFile};

/// A single violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule name.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Crates whose library code must be bit-reproducible run to run: hash
/// containers (randomized iteration order *per process*) are banned there.
pub const DETERMINISTIC_CRATES: &[&str] = &["graph", "gnn", "dist", "net", "partition", "sparsify"];

/// Stable names of every rule, in reporting order.
pub const RULE_NAMES: &[&str] = &[
    RULE_HASH_ITER,
    RULE_THREAD_SPAWN,
    RULE_WALLCLOCK,
    RULE_UNWRAP,
    RULE_FORBID_UNSAFE,
    RULE_PRINT_MACRO,
    RULE_TAPE_IN_LOOP,
    RULE_ALLOC_IN_HOT_LOOP,
];

pub const RULE_HASH_ITER: &str = "hash-iter";
pub const RULE_THREAD_SPAWN: &str = "thread-spawn";
pub const RULE_WALLCLOCK: &str = "wallclock";
pub const RULE_UNWRAP: &str = "unwrap-expect";
pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
pub const RULE_PRINT_MACRO: &str = "print-macro";
pub const RULE_TAPE_IN_LOOP: &str = "tape-in-loop";
pub const RULE_ALLOC_IN_HOT_LOOP: &str = "alloc-in-hot-loop";

/// Files whose loop bodies are sampling/training hot paths: fresh `Vec`s
/// per iteration there defeat the reusable-scratch design.
pub const HOT_LOOP_FILES: &[&str] = &["crates/gnn/src/sampler.rs"];

/// One-line description per rule (for `splpg-lint rules`).
pub fn describe(rule: &str) -> &'static str {
    match rule {
        RULE_HASH_ITER => {
            "no std HashMap/HashSet in library code of deterministic crates \
             (graph, gnn, dist, net, partition, sparsify): hash iteration \
             order is randomized per process and silently breaks run-to-run \
             reproducibility — use BTreeMap/BTreeSet or index vectors"
        }
        RULE_THREAD_SPAWN => {
            "no std::thread::spawn/scope outside splpg-par and splpg-net: \
             ad-hoc threads bypass the deterministic fork-join pool (par) \
             and the cluster actor runtime (net) and their thread-count \
             invariance guarantees"
        }
        RULE_WALLCLOCK => {
            "no std::time::Instant/SystemTime outside crates/bench: wall-clock \
             reads in library code make outputs timing-dependent; measure in \
             the bench harness instead"
        }
        RULE_UNWRAP => {
            "no .unwrap() and no bare .expect(…) in non-test library code of \
             I/O- and solver-facing crates (graph::io, linalg, datasets): \
             return Result, or document the invariant with \
             .expect(\"invariant: …\")"
        }
        RULE_FORBID_UNSAFE => "every crate root must carry #![forbid(unsafe_code)]",
        RULE_PRINT_MACRO => {
            "no println!/eprintln!/print!/eprint! in library code outside \
             crates/bench: libraries return data, binaries print it"
        }
        RULE_TAPE_IN_LOOP => {
            "no Tape::new() inside a loop body in library code: a fresh \
             tape per iteration reallocates the whole autodiff working set \
             every step — hoist one Tape out of the loop and let reset() \
             recycle its arena (allow with a reason where a cold-start \
             tape per iteration is the point)"
        }
        RULE_ALLOC_IN_HOT_LOOP => {
            "no Vec::new()/vec![…] inside loop bodies of sampling hot \
             paths (crates/gnn/src/sampler.rs): per-iteration empty Vecs \
             reallocate from cold every hop — reuse SamplerScratch \
             buffers, or Vec::with_capacity for output-owned arrays sized \
             once before the loop"
        }
        _ => "unknown rule",
    }
}

/// Scope facts about the file being checked, derived from its path.
#[derive(Debug, Clone)]
pub struct FileScope {
    /// Directory name under `crates/` (e.g. `graph`), if any.
    pub crate_name: Option<String>,
    /// Whether the file is a binary target (`src/bin/**` or `src/main.rs`).
    pub is_binary: bool,
    /// Whether the file is the crate root (`src/lib.rs`).
    pub is_crate_root: bool,
}

impl FileScope {
    /// Derives the scope from a `/`-separated workspace-relative path.
    pub fn of(path: &str) -> FileScope {
        let crate_name = path
            .split('/')
            .skip_while(|s| *s != "crates")
            .nth(1)
            .map(str::to_string);
        let is_binary = path.contains("/src/bin/") || path.ends_with("/src/main.rs");
        let is_crate_root = path.ends_with("/src/lib.rs");
        FileScope { crate_name, is_binary, is_crate_root }
    }

    fn in_crate(&self, name: &str) -> bool {
        self.crate_name.as_deref() == Some(name)
    }
}

/// Runs every rule over an analyzed file. `path` must be the
/// workspace-relative `/`-separated path (it drives rule scoping).
pub fn check(path: &str, file: &SourceFile) -> Vec<Diagnostic> {
    let scope = FileScope::of(path);
    let allows = collect_allows(file);
    let mut out = Vec::new();

    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        let mut push = |rule: &'static str, message: String| {
            if !allowed(&allows, file, idx, rule) {
                out.push(Diagnostic { path: path.to_string(), line: lineno, rule, message });
            }
        };

        if !line.in_test {
            hash_iter(&scope, line, &mut push);
            thread_spawn(&scope, line, &mut push);
            wallclock(&scope, line, &mut push);
            unwrap_expect(path, &scope, line, &mut push);
            print_macro(&scope, line, &mut push);
        }
    }

    forbid_unsafe(path, &scope, file, &allows, &mut out);
    tape_in_loop(path, &scope, file, &allows, &mut out);
    alloc_in_hot_loop(path, file, &allows, &mut out);
    out
}

fn hash_iter(scope: &FileScope, line: &Line, push: &mut impl FnMut(&'static str, String)) {
    let applies = scope
        .crate_name
        .as_deref()
        .is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));
    if !applies {
        return;
    }
    for token in ["HashMap", "HashSet"] {
        if !find_word(&line.code, token).is_empty() {
            push(
                RULE_HASH_ITER,
                format!(
                    "{token} in a deterministic crate: hash iteration order is \
                     randomized per process; use BTreeMap/BTreeSet or an index \
                     vector (or allow with a determinism argument)"
                ),
            );
        }
    }
}

fn thread_spawn(scope: &FileScope, line: &Line, push: &mut impl FnMut(&'static str, String)) {
    // par hosts the fork-join pool; net hosts the long-lived cluster
    // actors. All other crates must route threads through one of the two.
    if scope.in_crate("par") || scope.in_crate("net") {
        return;
    }
    for token in ["thread::spawn", "thread::scope"] {
        if line.code.contains(token) {
            push(
                RULE_THREAD_SPAWN,
                format!(
                    "{token} outside splpg-par/splpg-net: route parallel work \
                     through the global pool (or cluster actors through \
                     splpg-net) so thread-count invariance holds"
                ),
            );
            return;
        }
    }
}

fn wallclock(scope: &FileScope, line: &Line, push: &mut impl FnMut(&'static str, String)) {
    if scope.in_crate("bench") {
        return;
    }
    for token in ["Instant", "SystemTime"] {
        if !find_word(&line.code, token).is_empty() {
            push(
                RULE_WALLCLOCK,
                format!(
                    "std::time::{token} outside crates/bench: wall-clock reads \
                     make library output timing-dependent"
                ),
            );
            return;
        }
    }
}

fn unwrap_expect(
    path: &str,
    scope: &FileScope,
    line: &Line,
    push: &mut impl FnMut(&'static str, String),
) {
    let applies = path.ends_with("crates/graph/src/io.rs")
        || scope.in_crate("linalg")
        || scope.in_crate("datasets");
    if !applies {
        return;
    }
    if line.code.contains(".unwrap()") {
        push(
            RULE_UNWRAP,
            ".unwrap() in I/O/solver-facing library code: propagate a Result \
             or document the invariant with .expect(\"invariant: …\")"
                .to_string(),
        );
    }
    // .expect(…) must carry a message starting with "invariant:". The
    // literal contents live in `line.strings`; find the string opening
    // right after the call's parenthesis.
    let mut from = 0usize;
    while let Some(pos) = line.code[from..].find(".expect(") {
        let open = from + pos + ".expect(".len();
        // Char column of the first non-space character after the paren.
        let col = line.code[..open].chars().count()
            + line.code[open..].chars().take_while(|c| *c == ' ').count();
        let msg = line
            .strings
            .iter()
            .find(|(c, _)| *c == col)
            .map(|(_, s)| s.trim_start());
        let ok = msg.is_some_and(|m| m.starts_with("invariant:"));
        if !ok {
            push(
                RULE_UNWRAP,
                ".expect(…) without an \"invariant: …\" message in I/O/solver-\
                 facing library code: state the invariant or propagate a Result"
                    .to_string(),
            );
        }
        from = open;
    }
}

fn print_macro(scope: &FileScope, line: &Line, push: &mut impl FnMut(&'static str, String)) {
    if scope.in_crate("bench") || scope.is_binary {
        return;
    }
    for token in ["println!", "eprintln!", "print!", "eprint!"] {
        let bare = &token[..token.len() - 1];
        if find_word(&line.code, bare)
            .into_iter()
            .any(|at| line.code[at + bare.len()..].starts_with('!'))
        {
            push(
                RULE_PRINT_MACRO,
                format!("{token} in library code: return data to the caller; only bench and bin targets print"),
            );
            return;
        }
    }
}

fn forbid_unsafe(
    path: &str,
    scope: &FileScope,
    file: &SourceFile,
    allows: &[Vec<String>],
    out: &mut Vec<Diagnostic>,
) {
    if !scope.is_crate_root {
        return;
    }
    let has = file.lines.iter().any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if !has && !allowed(allows, file, 0, RULE_FORBID_UNSAFE) {
        out.push(Diagnostic {
            path: path.to_string(),
            line: 1,
            rule: RULE_FORBID_UNSAFE,
            message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
        });
    }
}

/// What a scanned token means to the loop tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopEv {
    Open,
    Close,
    Semi,
    /// `for` / `while` / `loop` keyword; the next `{` opens a loop body.
    LoopKw,
    /// `impl` keyword; cancels a following `for` (trait impls, not loops).
    ImplKw,
    /// A flagged token occurrence (index into the scanner's token list).
    Hit(usize),
}

/// Scans non-test library code for occurrences of `tokens` inside loop
/// bodies, invoking `report(line_idx, token_idx)` for each.
///
/// Loop bodies are tracked by brace matching on the masked code: a `{`
/// preceded (in the same statement) by a `for`/`while`/`loop` keyword
/// opens a loop scope. `impl … for … {` and higher-ranked `for<…>` bounds
/// are recognized and do not open loop scopes. A token entry ending in
/// `!` matches the bare word immediately followed by `!` (macro calls).
fn scan_loop_bodies(
    file: &SourceFile,
    tokens: &[&str],
    mut report: impl FnMut(usize, usize),
) {
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_loop = false;
    let mut pending_impl = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let mut events: Vec<(usize, LoopEv)> = Vec::new();
        for (at, ch) in code.char_indices() {
            match ch {
                '{' => events.push((at, LoopEv::Open)),
                '}' => events.push((at, LoopEv::Close)),
                ';' => events.push((at, LoopEv::Semi)),
                _ => {}
            }
        }
        for kw in ["for", "while", "loop"] {
            for at in find_word(code, kw) {
                // `for<'a> Fn(…)` is a higher-ranked bound, not a loop.
                let rest = code[at + kw.len()..].trim_start();
                if kw == "for" && rest.starts_with('<') {
                    continue;
                }
                events.push((at, LoopEv::LoopKw));
            }
        }
        for at in find_word(code, "impl") {
            events.push((at, LoopEv::ImplKw));
        }
        for (ti, token) in tokens.iter().enumerate() {
            if let Some(bare) = token.strip_suffix('!') {
                for at in find_word(code, bare) {
                    if code[at + bare.len()..].starts_with('!') {
                        events.push((at, LoopEv::Hit(ti)));
                    }
                }
            } else {
                for at in find_word(code, token) {
                    events.push((at, LoopEv::Hit(ti)));
                }
            }
        }
        events.sort_by_key(|&(at, _)| at);
        for (_, ev) in events {
            match ev {
                LoopEv::Open => {
                    stack.push(pending_loop && !pending_impl);
                    pending_loop = false;
                    pending_impl = false;
                }
                LoopEv::Close => {
                    stack.pop();
                }
                LoopEv::Semi => {
                    pending_loop = false;
                    pending_impl = false;
                }
                LoopEv::LoopKw => pending_loop = true,
                LoopEv::ImplKw => pending_impl = true,
                LoopEv::Hit(ti) => {
                    if !line.in_test && stack.iter().any(|&is_loop| is_loop) {
                        report(idx, ti);
                    }
                }
            }
        }
    }
}

/// Flags `Tape::new()` inside loop bodies of non-test library code: a
/// fresh tape per iteration defeats the arena — its buffers are rebuilt
/// from cold every step instead of being recycled by `Tape::reset()`.
fn tape_in_loop(
    path: &str,
    scope: &FileScope,
    file: &SourceFile,
    allows: &[Vec<String>],
    out: &mut Vec<Diagnostic>,
) {
    if scope.is_binary {
        // Binaries may build throwaway tapes (e.g. a bench's cold-start
        // baseline measures exactly that cost).
        return;
    }
    scan_loop_bodies(file, &["Tape::new"], |idx, _| {
        if !allowed(allows, file, idx, RULE_TAPE_IN_LOOP) {
            out.push(Diagnostic {
                path: path.to_string(),
                line: idx + 1,
                rule: RULE_TAPE_IN_LOOP,
                message: "Tape::new() inside a loop body: hoist the tape out \
                          of the loop and call reset() per iteration so its \
                          arena is recycled instead of reallocated"
                    .to_string(),
            });
        }
    });
}

/// Flags `Vec::new()` / `vec![…]` inside loop bodies of sampling hot
/// paths ([`HOT_LOOP_FILES`]): a fresh empty Vec per frontier node or hop
/// regrows from zero capacity every iteration — exactly the allocation
/// churn the per-worker [`SamplerScratch`] buffers exist to absorb.
/// `Vec::with_capacity` (sized once from known totals) is allowed.
fn alloc_in_hot_loop(
    path: &str,
    file: &SourceFile,
    allows: &[Vec<String>],
    out: &mut Vec<Diagnostic>,
) {
    if !HOT_LOOP_FILES.iter().any(|f| path.ends_with(f)) {
        return;
    }
    scan_loop_bodies(file, &["Vec::new", "vec!"], |idx, ti| {
        if !allowed(allows, file, idx, RULE_ALLOC_IN_HOT_LOOP) {
            let token = if ti == 0 { "Vec::new()" } else { "vec![…]" };
            out.push(Diagnostic {
                path: path.to_string(),
                line: idx + 1,
                rule: RULE_ALLOC_IN_HOT_LOOP,
                message: format!(
                    "{token} inside a sampling hot-loop body: reuse a \
                     SamplerScratch buffer or hoist a with_capacity \
                     allocation out of the loop"
                ),
            });
        }
    });
}

/// Parses `splpg-lint: allow(rule-a, rule-b)` pragmas out of each line's
/// comment text. Returns one allow-list per line.
fn collect_allows(file: &SourceFile) -> Vec<Vec<String>> {
    file.lines
        .iter()
        .map(|line| {
            let mut allows = Vec::new();
            let mut rest = line.comment.as_str();
            while let Some(at) = rest.find("splpg-lint:") {
                rest = &rest[at + "splpg-lint:".len()..];
                let trimmed = rest.trim_start();
                if let Some(args) = trimmed.strip_prefix("allow(") {
                    if let Some(close) = args.find(')') {
                        for name in args[..close].split(',') {
                            allows.push(name.trim().to_string());
                        }
                        rest = &args[close..];
                    }
                }
            }
            allows
        })
        .collect()
}

/// A diagnostic on line `idx` is suppressed by a pragma on the same line,
/// or by a pragma on the immediately preceding line when that line holds
/// no code of its own (a standalone `// splpg-lint: allow(...) — reason`).
fn allowed(allows: &[Vec<String>], file: &SourceFile, idx: usize, rule: &str) -> bool {
    let hit = |i: usize| allows[i].iter().any(|a| a == rule);
    if hit(idx) {
        return true;
    }
    idx > 0 && hit(idx - 1) && file.lines[idx - 1].code.trim().is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        check(path, &SourceFile::analyze(src))
    }

    #[test]
    fn scope_extracts_crate_name() {
        let s = FileScope::of("crates/graph/src/io.rs");
        assert_eq!(s.crate_name.as_deref(), Some("graph"));
        assert!(!s.is_binary);
        let b = FileScope::of("crates/bench/src/bin/fig03.rs");
        assert!(b.is_binary);
        assert!(FileScope::of("crates/gnn/src/lib.rs").is_crate_root);
    }

    #[test]
    fn same_line_pragma_suppresses() {
        let src = "#![forbid(unsafe_code)]\nuse std::collections::HashMap; // splpg-lint: allow(hash-iter) — lookup only, never iterated\n";
        assert!(diags("crates/graph/src/lib.rs", src).is_empty());
    }

    #[test]
    fn preceding_line_pragma_suppresses() {
        let src = "#![forbid(unsafe_code)]\n// splpg-lint: allow(hash-iter) — lookup only\nuse std::collections::HashMap;\n";
        assert!(diags("crates/graph/src/lib.rs", src).is_empty());
    }

    #[test]
    fn thread_scope_allowed_in_par_and_net_only() {
        let src = "#![forbid(unsafe_code)]\nstd::thread::scope(|s| s.spawn(|| {}));\n";
        assert!(diags("crates/par/src/lib.rs", src).is_empty());
        assert!(diags("crates/net/src/cluster.rs", src).is_empty());
        let d = diags("crates/dist/src/trainer.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_THREAD_SPAWN);
    }

    #[test]
    fn hash_iter_covers_net() {
        let src = "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\n";
        let d = diags("crates/net/src/codec.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_HASH_ITER);
    }

    #[test]
    fn tape_new_in_loop_fires() {
        for header in ["for b in batches {", "while run {", "loop {"] {
            let src = format!(
                "#![forbid(unsafe_code)]\nfn f() {{\n    {header}\n        let mut tape = Tape::new();\n    }}\n}}\n"
            );
            let d = diags("crates/gnn/src/trainer.rs", &src);
            assert_eq!(d.len(), 1, "{header}: {d:?}");
            assert_eq!(d[0].rule, RULE_TAPE_IN_LOOP);
            assert_eq!(d[0].line, 4);
        }
    }

    #[test]
    fn tape_new_outside_loop_is_fine() {
        let src = "#![forbid(unsafe_code)]\nfn f() {\n    let mut tape = Tape::new();\n    for b in batches {\n        tape.reset();\n    }\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn tape_in_loop_skips_tests_binaries_and_impl_for() {
        let in_test = "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n    fn t() {\n        for i in 0..3 {\n            let mut tape = Tape::new();\n        }\n    }\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", in_test).is_empty());
        let in_bin = "fn main() {\n    for i in 0..3 {\n        let t = Tape::new();\n    }\n}\n";
        assert!(diags("crates/bench/src/bin/train_step.rs", in_bin).is_empty());
        // `impl Trait for Type` must not be mistaken for a loop header.
        let impl_for = "#![forbid(unsafe_code)]\nimpl Builder for Factory {\n    fn build(&self) -> Tape {\n        Tape::new()\n    }\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", impl_for).is_empty());
        // Higher-ranked `for<'a>` bounds are not loops either.
        let hrtb = "#![forbid(unsafe_code)]\nfn f(g: impl for<'a> Fn(&'a u32)) {\n    let t = Tape::new();\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", hrtb).is_empty());
    }

    #[test]
    fn tape_in_loop_pragma_suppresses() {
        let src = "#![forbid(unsafe_code)]\nfn f() {\n    for i in 0..3 {\n        // splpg-lint: allow(tape-in-loop) — cold-start cost is the measurement\n        let t = Tape::new();\n    }\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn alloc_in_hot_loop_fires_for_vec_new_and_vec_macro() {
        for alloc in ["let mut buf = Vec::new();", "let zs = vec![0.0; n];"] {
            let src = format!(
                "#![forbid(unsafe_code)]\nfn f() {{\n    for v in frontier {{\n        {alloc}\n    }}\n}}\n"
            );
            let d = diags("crates/gnn/src/sampler.rs", &src);
            assert_eq!(d.len(), 1, "{alloc}: {d:?}");
            assert_eq!(d[0].rule, RULE_ALLOC_IN_HOT_LOOP);
            assert_eq!(d[0].line, 4);
        }
    }

    #[test]
    fn alloc_in_hot_loop_scoped_to_hot_files_and_loops() {
        // Outside a loop body: with_capacity-style hoisting is the point,
        // but even a bare Vec::new at fn scope is once-per-call, not per-hop.
        let outside = "#![forbid(unsafe_code)]\nfn f() {\n    let mut buf = Vec::new();\n    for v in frontier {\n        buf.clear();\n    }\n}\n";
        assert!(diags("crates/gnn/src/sampler.rs", outside).is_empty());
        // Same pattern in a non-hot file is not this rule's business.
        let in_loop = "#![forbid(unsafe_code)]\nfn f() {\n    for v in frontier {\n        let mut buf = Vec::new();\n    }\n}\n";
        assert!(diags("crates/gnn/src/trainer.rs", in_loop).is_empty());
        // Test modules may allocate freely.
        let in_test = "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n    fn t() {\n        for i in 0..3 {\n            let v = vec![i];\n        }\n    }\n}\n";
        assert!(diags("crates/gnn/src/sampler.rs", in_test).is_empty());
        // `Vec::with_capacity` never matches the `Vec::new` token.
        let with_cap = "#![forbid(unsafe_code)]\nfn f() {\n    for v in frontier {\n        let mut buf = Vec::with_capacity(n);\n    }\n}\n";
        assert!(diags("crates/gnn/src/sampler.rs", with_cap).is_empty());
    }

    #[test]
    fn alloc_in_hot_loop_pragma_suppresses() {
        let src = "#![forbid(unsafe_code)]\nfn f() {\n    for v in frontier {\n        // splpg-lint: allow(alloc-in-hot-loop) — sized exactly once, moved into the batch\n        let buf = Vec::new();\n    }\n}\n";
        assert!(diags("crates/gnn/src/sampler.rs", src).is_empty());
    }

    #[test]
    fn pragma_for_other_rule_does_not_suppress() {
        let src = "#![forbid(unsafe_code)]\nuse std::collections::HashMap; // splpg-lint: allow(wallclock) — wrong rule\n";
        let d = diags("crates/graph/src/lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_HASH_ITER);
    }
}
