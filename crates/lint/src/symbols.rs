//! Pass 3 of the analyzer: the workspace symbol pass.
//!
//! The determinism rules (`float-accum-in-par`, `rng-not-derived`) need
//! to know whether a token executes *inside a parallel region* — on a
//! `splpg-par` worker thread, where statement order across items is not
//! the source order. Parallel regions start syntactically at the
//! argument lists of [`crate::tree::PAR_ENTRY_POINTS`] calls, but the
//! workspace routinely binds a closure to a name (`let run = |…| …;
//! pool.parallel_for_mut(out, m, 1, run)`) or dispatches a free function
//! by name, so the marking must follow references.
//!
//! This pass runs a breadth-first fixpoint over all files at once:
//!
//! 1. seed: every token inside a `PAR_ENTRY_POINTS` argument list is
//!    marked parallel;
//! 2. propagate: inside any marked range, a *direct call* `name(…)` or
//!    *path call* `prefix::name(…)` marks the body of every same-crate
//!    `fn name` (a `splpg_x::` prefix retargets the lookup at crate `x`),
//!    and a *bare reference* to a `let`-bound closure in the same file
//!    marks that closure's body;
//! 3. repeat until no new tokens get marked.
//!
//! Method calls (`.name(…)`) deliberately do **not** propagate: receiver
//! types are unknowable without real type inference, and chasing every
//! method name by string would mark half the workspace. The cost is
//! bounded unsoundness — a parallel closure that reaches order-sensitive
//! code only through a method call is not seen — which the 1-vs-4-thread
//! bitwise diff in `scripts/verify.sh` still covers dynamically.

use crate::lexer::SourceFile;
use crate::tree::{TokenKind, TokenTree};
use std::collections::BTreeMap;

/// One file's inputs to the symbol pass.
pub struct FileUnit<'a> {
    /// Workspace-relative `/`-separated path.
    pub path: &'a str,
    /// Crate directory name under `crates/`, if any.
    pub crate_name: Option<&'a str>,
    /// The lexed file.
    pub file: &'a SourceFile,
    /// Its token tree.
    pub tree: &'a TokenTree,
}

/// Computes, for every file, a per-token "runs inside a parallel region"
/// mask, aligned with `tree.tokens`.
pub fn parallel_marks(units: &[FileUnit<'_>]) -> Vec<Vec<bool>> {
    // Symbol tables: (crate, fn name) -> bodies; (file, closure name) -> bodies.
    type FnBodies<'a> = BTreeMap<(&'a str, &'a str), Vec<(usize, (usize, usize))>>;
    let mut fns: FnBodies<'_> = BTreeMap::new();
    let mut closures: BTreeMap<(usize, &str), Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, u) in units.iter().enumerate() {
        let Some(krate) = u.crate_name else { continue };
        for f in &u.tree.fns {
            fns.entry((krate, f.name.as_str())).or_default().push((fi, f.body));
        }
        for c in &u.tree.closures {
            closures.entry((fi, c.name.as_str())).or_default().push(c.body);
        }
    }

    let mut marks: Vec<Vec<bool>> = units.iter().map(|u| vec![false; u.tree.tokens.len()]).collect();
    let mut work: Vec<(usize, usize, usize)> = Vec::new();

    let mark_range = |marks: &mut Vec<Vec<bool>>,
                      work: &mut Vec<(usize, usize, usize)>,
                      fi: usize,
                      (s, e): (usize, usize)| {
        let m = &mut marks[fi];
        let end = e.min(m.len());
        let mut newly = false;
        for flag in m.iter_mut().take(end).skip(s) {
            if !*flag {
                *flag = true;
                newly = true;
            }
        }
        if newly {
            work.push((fi, s, e));
        }
    };

    for (fi, u) in units.iter().enumerate() {
        for &range in &u.tree.par_call_args {
            mark_range(&mut marks, &mut work, fi, range);
        }
    }

    while let Some((fi, s, e)) = work.pop() {
        let u = &units[fi];
        let toks = &u.tree.tokens;
        for i in s..e.min(toks.len()) {
            let t = &toks[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let name = t.text.as_str();
            let next = toks.get(i + 1).map(|n| n.text.as_str());
            let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
            if next == Some("(") {
                // Method calls don't propagate (see module docs).
                if prev == Some(".") {
                    continue;
                }
                // Resolve the call's target crate from a `::` path prefix.
                let mut krate = u.crate_name;
                if prev == Some("::") {
                    let mut j = i - 1; // at `::`
                    let mut head = None;
                    while let Some(p) = j.checked_sub(1) {
                        if toks[p].kind == TokenKind::Ident {
                            head = Some(toks[p].text.as_str());
                            match p.checked_sub(1).map(|q| toks[q].text.as_str()) {
                                Some("::") => j = p - 1,
                                _ => break,
                            }
                        } else {
                            break;
                        }
                    }
                    if let Some(h) = head {
                        if let Some(target) = h.strip_prefix("splpg_") {
                            krate = Some(target);
                        } else if h.chars().next().is_some_and(char::is_uppercase) {
                            // `Type::method(…)`: resolving by bare method
                            // name would conflate every `fn new` in the
                            // crate onto one impl's — skip instead of
                            // over-marking (the 1-vs-4-thread diff in
                            // verify.sh backstops what this misses).
                            krate = None;
                        }
                        // `crate::` / `self::` / `module::` keep the crate.
                    }
                }
                if let Some(k) = krate {
                    if let Some(defs) = fns.get(&(k, name)) {
                        for &(dfi, body) in defs.clone().iter() {
                            mark_range(&mut marks, &mut work, dfi, body);
                        }
                    }
                }
            }
            // Bare reference to a same-file closure binding: dispatching a
            // closure by name (`pool.parallel_for_mut(live, 1, 1, fetch)`).
            if next != Some("(") && prev != Some(".") {
                if let Some(bodies) = closures.get(&(fi, name)) {
                    for &body in bodies.clone().iter() {
                        mark_range(&mut marks, &mut work, fi, body);
                    }
                }
            }
        }
    }

    marks
}

#[cfg(test)]
mod tests {
    use super::*;

    type ParsedUnit = (String, SourceFile, TokenTree);

    fn analyze(sources: &[(&str, &str)]) -> (Vec<ParsedUnit>, Vec<Vec<bool>>) {
        let parsed: Vec<ParsedUnit> = sources
            .iter()
            .map(|(p, s)| {
                let f = SourceFile::analyze(s);
                let t = TokenTree::build(&f);
                ((*p).to_string(), f, t)
            })
            .collect();
        let names: Vec<Option<String>> =
            parsed.iter().map(|(p, _, _)| crate::rules::FileScope::of(p).crate_name).collect();
        let units: Vec<FileUnit<'_>> = parsed
            .iter()
            .zip(&names)
            .map(|((p, f, t), n)| FileUnit {
                path: p,
                crate_name: n.as_deref(),
                file: f,
                tree: t,
            })
            .collect();
        let marks = parallel_marks(&units);
        (parsed, marks)
    }

    fn marked(parsed: &[(String, SourceFile, TokenTree)], marks: &[Vec<bool>], text: &str) -> bool {
        for (fi, (_, _, t)) in parsed.iter().enumerate() {
            for (i, tok) in t.tokens.iter().enumerate() {
                if tok.text == text {
                    return marks[fi][i];
                }
            }
        }
        panic!("token {text} not found");
    }

    #[test]
    fn inline_closure_args_are_marked() {
        let (p, m) = analyze(&[(
            "crates/tensor/src/kernels.rs",
            "fn f(pool: &Pool) { pool.parallel_for_mut(out, m, 1, |r, c| { hot(); }); cold(); }\n",
        )]);
        assert!(marked(&p, &m, "hot"));
        assert!(!marked(&p, &m, "cold"));
    }

    #[test]
    fn named_closure_dispatch_marks_body() {
        let (p, m) = analyze(&[(
            "crates/gnn/src/sampler.rs",
            "fn f(pool: &Pool) {\n    let fetch = |r: usize, c: &mut [u32]| { hot(); };\n    pool.parallel_for_mut(live, 1, 1, fetch);\n}\n",
        )]);
        assert!(marked(&p, &m, "hot"));
    }

    #[test]
    fn direct_call_marks_same_crate_fn_across_files() {
        let (p, m) = analyze(&[
            (
                "crates/tensor/src/kernels.rs",
                "fn outer(pool: &Pool) { pool.parallel_for(n, 1, |i| { helper(i); }); }\n",
            ),
            ("crates/tensor/src/segment.rs", "pub fn helper(i: usize) { deep(); }\n"),
        ]);
        assert!(marked(&p, &m, "deep"));
    }

    #[test]
    fn splpg_path_call_retargets_crate() {
        let (p, m) = analyze(&[
            (
                "crates/gnn/src/sampler.rs",
                "fn outer(pool: &Pool) { pool.parallel_for(n, 1, |i| { splpg_tensor::kernels::helper(i); }); }\n",
            ),
            ("crates/tensor/src/kernels.rs", "pub fn helper(i: usize) { deep(); }\n"),
        ]);
        assert!(marked(&p, &m, "deep"));
    }

    #[test]
    fn method_calls_do_not_propagate() {
        let (p, m) = analyze(&[(
            "crates/linalg/src/solver.rs",
            "fn outer(pool: &Pool) { pool.parallel_for(n, 1, |i| { engine.helper(i); }); }\nfn helper(i: usize) { deep(); }\n",
        )]);
        assert!(!marked(&p, &m, "deep"));
    }

    #[test]
    fn unreferenced_fn_stays_unmarked() {
        let (p, m) = analyze(&[(
            "crates/tensor/src/kernels.rs",
            "fn outer(pool: &Pool) { pool.parallel_for(n, 1, |i| { touch(i); }); }\nfn bystander() { cold(); }\n",
        )]);
        assert!(!marked(&p, &m, "cold"));
    }
}
