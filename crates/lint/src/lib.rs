#![forbid(unsafe_code)]
//! `splpg-lint` — in-tree determinism & safety analyzer.
//!
//! SpLPG's headline claim — sparsified data sharing preserves
//! link-prediction quality — is only checkable in this repo because
//! training is bit-deterministic across thread counts and across
//! processes. That property is easy to break silently: one stray
//! `HashMap` iteration, one thread-id-seeded RNG, one wall-clock read in
//! a library crate. This crate machine-checks those conventions as named
//! rules over every `crates/*/src` file and is wired into
//! `scripts/verify.sh` as a standing gate.
//!
//! The scanner is dependency-free: a comment/string-aware lexer
//! ([`lexer::SourceFile`]) masks out comments and string-literal contents
//! so rules only ever fire on code, and a small rule engine
//! ([`rules::check`]) applies path-scoped rules line by line. A line can
//! opt out with a reasoned pragma:
//!
//! ```text
//! // splpg-lint: allow(hash-iter) — lookup table, never iterated
//! ```
//!
//! on the offending line or alone on the line above it. Run with:
//!
//! ```text
//! cargo run -p splpg-lint -- check
//! ```

pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use lexer::SourceFile;
pub use rules::{describe, Diagnostic, RULE_NAMES};

/// Checks one source string under a workspace-relative virtual path.
///
/// The path drives rule scoping (crate name, binary target, crate root),
/// so fixtures can exercise any scope without touching the filesystem.
pub fn check_source(path: &str, source: &str) -> Vec<Diagnostic> {
    rules::check(path, &SourceFile::analyze(source))
}

/// Outcome of a workspace scan.
#[derive(Debug)]
pub struct Report {
    /// All diagnostics, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Scans every `crates/*/src/**/*.rs` file under `root`.
///
/// Directory entries are sorted so diagnostics come out in a stable
/// order regardless of filesystem enumeration order — the analyzer holds
/// itself to the determinism bar it enforces.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] if `root/crates` cannot be read.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for dir in &crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();

    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    for file in &files {
        let source = fs::read_to_string(file)?;
        let rel = relative_path(root, file);
        diagnostics.extend(check_source(&rel, &source));
    }
    diagnostics.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(Report { diagnostics, files_scanned })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated form of `file`.
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_are_slash_separated() {
        let root = Path::new("/w");
        let file = Path::new("/w/crates/graph/src/io.rs");
        assert_eq!(relative_path(root, file), "crates/graph/src/io.rs");
    }

    #[test]
    fn check_source_runs_all_rules() {
        let d = check_source("crates/graph/src/lib.rs", "fn f() {}\n");
        assert_eq!(d.len(), 1, "missing forbid(unsafe_code) must fire: {d:?}");
        assert_eq!(d[0].rule, rules::RULE_FORBID_UNSAFE);
    }
}
