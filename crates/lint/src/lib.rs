#![forbid(unsafe_code)]
//! `splpg-lint` — in-tree determinism & safety analyzer.
//!
//! SpLPG's headline claim — sparsified data sharing preserves
//! link-prediction quality — is only checkable in this repo because
//! training is bit-deterministic across thread counts and across
//! processes. That property is easy to break silently: one stray
//! `HashMap` iteration, one hand-mixed RNG seed, one float reduction
//! whose order follows the thread count. This crate machine-checks those
//! conventions as named rules over every `crates/*/src` file and is
//! wired into `scripts/verify.sh` as a standing gate.
//!
//! The analyzer is dependency-free and runs as a pass pipeline:
//!
//! 1. **lex** ([`lexer::SourceFile`]) — masks comments and string
//!    contents so later passes only ever see code;
//! 2. **parse** ([`tree::TokenTree`]) — tokenizes the masked code,
//!    matches `{}`/`()`/`[]`, and annotates every token with loop depth
//!    and enclosing fn/closure scope;
//! 3. **symbols** ([`symbols::parallel_marks`]) — a workspace-wide
//!    fixpoint marking every token reachable from a `splpg-par` dispatch
//!    (inline closures, `let`-bound closures passed by name, and
//!    same-crate/`splpg_x::` direct calls);
//! 4. **rules** ([`rules::RULES`]) — independent named checkers over the
//!    analyzed files, plus a final `stale-pragma` pass.
//!
//! A diagnostic can be suppressed with a reasoned pragma:
//!
//! ```text
//! // splpg-lint: allow(hash-iter) — lookup table, never iterated
//! ```
//!
//! on the offending line or alone on the line above it;
//! `allow-file(rule)` covers the whole file. Pragmas that suppress
//! nothing are themselves flagged (`stale-pragma`). Run with:
//!
//! ```text
//! cargo run -p splpg-lint -- check [--format=json] [--timings]
//! ```

// splpg-lint: allow-file(wallclock) — the analyzer times its own passes for `--timings`/`--budget-ms`; timing output never feeds back into diagnostics

pub mod lexer;
pub mod rules;
pub mod symbols;
pub mod tree;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub use lexer::SourceFile;
pub use rules::{check_analysis, describe, Diagnostic, FileAnalysis, RULE_NAMES};

/// Checks one source string under a workspace-relative virtual path.
///
/// The path drives rule scoping (crate name, binary target, crate root),
/// so fixtures can exercise any scope without touching the filesystem.
/// The parallel-region mask is computed from this file alone; workspace
/// scans ([`check_workspace`]) resolve dispatch across files too.
pub fn check_source(path: &str, source: &str) -> Vec<Diagnostic> {
    check_analysis(&FileAnalysis::single(path, source))
}

/// Wall-clock cost of one analyzer phase (a pass, or one rule's sweep
/// over every file).
#[derive(Debug, Clone)]
pub struct PhaseTiming {
    /// Phase name: `lex+parse`, `symbols`, or a rule name.
    pub phase: String,
    /// Elapsed microseconds.
    pub micros: u128,
}

/// Outcome of a workspace scan.
#[derive(Debug)]
pub struct Report {
    /// All diagnostics, sorted by path, line, then rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Per-phase timings; empty unless the scan was run timed.
    pub timings: Vec<PhaseTiming>,
}

impl Report {
    /// Total scan time in microseconds (0 when not timed).
    pub fn total_micros(&self) -> u128 {
        self.timings.iter().map(|t| t.micros).sum()
    }
}

/// Scans every `crates/*/src/**/*.rs` file under `root`.
///
/// Directory entries are sorted so diagnostics come out in a stable
/// order regardless of filesystem enumeration order — the analyzer holds
/// itself to the determinism bar it enforces.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] if `root/crates` cannot be read.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    check_workspace_timed(root, false)
}

/// [`check_workspace`], optionally timing each pass and rule.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] if `root/crates` cannot be read.
pub fn check_workspace_timed(root: &Path, timed: bool) -> io::Result<Report> {
    let files = workspace_files(root)?;
    let mut timings = Vec::new();
    let mut clock = Clock::start(timed);

    // Pass 1+2: lex and parse every file.
    struct Parsed {
        rel: String,
        scope: rules::FileScope,
        file: SourceFile,
        tree: tree::TokenTree,
        pragmas: rules::Pragmas,
    }
    let mut parsed = Vec::with_capacity(files.len());
    for path in &files {
        let source = fs::read_to_string(path)?;
        let rel = relative_path(root, path);
        let file = SourceFile::analyze(&source);
        let tree = tree::TokenTree::build(&file);
        let scope = rules::FileScope::of(&rel);
        let pragmas = rules::Pragmas::collect(&file);
        parsed.push(Parsed { rel, scope, file, tree, pragmas });
    }
    clock.lap("lex+parse", &mut timings);

    // Pass 3: workspace-wide parallel-region marks.
    let marks = {
        let units: Vec<symbols::FileUnit<'_>> = parsed
            .iter()
            .map(|p| symbols::FileUnit {
                path: &p.rel,
                crate_name: p.scope.crate_name.as_deref(),
                file: &p.file,
                tree: &p.tree,
            })
            .collect();
        symbols::parallel_marks(&units)
    };
    clock.lap("symbols", &mut timings);

    let analyses: Vec<FileAnalysis> = parsed
        .into_iter()
        .zip(marks)
        .map(|(p, in_par)| FileAnalysis {
            path: p.rel,
            scope: p.scope,
            file: p.file,
            tree: p.tree,
            pragmas: p.pragmas,
            in_par,
        })
        .collect();

    // Pass 4: every rule over every file, one rule at a time so each
    // rule's cost is attributable; stale-pragma last (it reads the
    // pragma usage the other rules record).
    let mut diagnostics = Vec::new();
    for rule in rules::RULES {
        for a in &analyses {
            (rule.run)(a, &mut diagnostics);
        }
        clock.lap(rule.name, &mut timings);
    }
    for a in &analyses {
        rules::stale_pragmas(a, &mut diagnostics);
    }
    clock.lap(rules::RULE_STALE_PRAGMA, &mut timings);

    diagnostics.sort_by(|a, b| {
        a.path.cmp(&b.path).then(a.line.cmp(&b.line)).then(a.rule.cmp(b.rule))
    });
    Ok(Report { diagnostics, files_scanned: analyses.len(), timings })
}

/// Every `crates/*/src/**/*.rs` path under `root`, sorted.
fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for dir in &crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated form of `file`.
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lap timer for `--timings`; a no-op when not timed.
struct Clock {
    t0: Option<Instant>,
}

impl Clock {
    fn start(timed: bool) -> Clock {
        Clock { t0: timed.then(Instant::now) }
    }

    fn lap(&mut self, phase: &str, out: &mut Vec<PhaseTiming>) {
        if let Some(t0) = self.t0.as_mut() {
            let now = Instant::now();
            out.push(PhaseTiming { phase: phase.to_string(), micros: now.duration_since(*t0).as_micros() });
            *t0 = now;
        }
    }
}

// ---------------------------------------------------------------------
// JSON output (`--format=json`): hand-rolled, zero dependencies.
// ---------------------------------------------------------------------

/// Escapes `s` for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The JSON array form of a diagnostic list: one object per line, in the
/// given (already stable) order.
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "[]".to_string();
    }
    let rows: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "    {{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&d.path),
                d.line,
                json_escape(d.rule),
                json_escape(&d.message)
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

/// The full machine-readable report for `--format=json`.
pub fn report_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"violations\": {},\n", report.diagnostics.len()));
    out.push_str(&format!("  \"diagnostics\": {}", diagnostics_json(&report.diagnostics)));
    if !report.timings.is_empty() {
        let rows: Vec<String> = report
            .timings
            .iter()
            .map(|t| format!("    {{\"phase\":\"{}\",\"micros\":{}}}", json_escape(&t.phase), t.micros))
            .collect();
        out.push_str(&format!(
            ",\n  \"timings\": [\n{}\n  ],\n  \"total_micros\": {}",
            rows.join(",\n"),
            report.total_micros()
        ));
    }
    out.push_str("\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_are_slash_separated() {
        let root = Path::new("/w");
        let file = Path::new("/w/crates/graph/src/io.rs");
        assert_eq!(relative_path(root, file), "crates/graph/src/io.rs");
    }

    #[test]
    fn check_source_runs_all_rules() {
        let d = check_source("crates/graph/src/lib.rs", "fn f() {}\n");
        assert_eq!(d.len(), 1, "missing forbid(unsafe_code) must fire: {d:?}");
        assert_eq!(d[0].rule, rules::RULE_FORBID_UNSAFE);
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_report_json_is_stable() {
        let report = Report { diagnostics: Vec::new(), files_scanned: 3, timings: Vec::new() };
        assert_eq!(
            report_json(&report),
            "{\n  \"files_scanned\": 3,\n  \"violations\": 0,\n  \"diagnostics\": []\n}"
        );
    }
}
