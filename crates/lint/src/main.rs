//! CLI for the in-tree analyzer.
//!
//! ```text
//! cargo run -p splpg-lint -- check [--root <dir>] [--format=json]
//!                                  [--timings] [--budget-ms <n>]
//! cargo run -p splpg-lint -- rules
//! ```
//!
//! Exit codes: 0 clean, 1 violations found (or time budget exceeded),
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for rule in splpg_lint::RULE_NAMES {
                println!("{rule}\n    {}\n", splpg_lint::describe(rule));
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: splpg-lint <check [--root <dir>] [--format=json|text] \
                 [--timings] [--budget-ms <n>] | rules>"
            );
            ExitCode::from(2)
        }
    }
}

struct Options {
    root: PathBuf,
    json: bool,
    timings: bool,
    budget_ms: Option<u128>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts =
        Options { root: PathBuf::from("."), json: false, timings: false, budget_ms: None };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return Err("--root requires a directory".to_string()),
            },
            "--timings" => opts.timings = true,
            "--budget-ms" => match it.next().and_then(|n| n.parse::<u128>().ok()) {
                Some(ms) => opts.budget_ms = Some(ms),
                None => return Err("--budget-ms requires a number".to_string()),
            },
            "--format=json" => opts.json = true,
            "--format=text" => opts.json = false,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => {
                    return Err(format!("--format must be json or text, got {other:?}"));
                }
            },
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn check(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("splpg-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if !opts.root.join("crates").is_dir() {
        eprintln!(
            "splpg-lint: no `crates/` directory under {} (run from the workspace root or pass --root)",
            opts.root.display()
        );
        return ExitCode::from(2);
    }
    let timed = opts.timings || opts.budget_ms.is_some();
    let report = match splpg_lint::check_workspace_timed(&opts.root, timed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("splpg-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    // The budget gate keeps the analyzer honest about "fast enough for
    // verify.sh": blowing it is a failure, not a statistic.
    let total_ms = report.total_micros() / 1000;
    let over_budget = opts.budget_ms.is_some_and(|b| total_ms > b);

    if opts.json {
        println!("{}", splpg_lint::report_json(&report));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        if opts.timings {
            println!("splpg-lint: per-phase timings over {} files:", report.files_scanned);
            for t in &report.timings {
                println!("    {:<24} {:>9.3} ms", t.phase, t.micros as f64 / 1000.0);
            }
            println!("    {:<24} {:>9.3} ms", "total", report.total_micros() as f64 / 1000.0);
        }
        if report.diagnostics.is_empty() {
            println!(
                "splpg-lint: OK ({} files, {} rules)",
                report.files_scanned,
                splpg_lint::RULE_NAMES.len()
            );
        } else {
            println!(
                "splpg-lint: {} violation(s) across {} files scanned",
                report.diagnostics.len(),
                report.files_scanned
            );
        }
    }
    if over_budget {
        eprintln!(
            "splpg-lint: scan took {total_ms} ms, over the --budget-ms {} gate",
            opts.budget_ms.unwrap_or(0)
        );
        return ExitCode::FAILURE;
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
