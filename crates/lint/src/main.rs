//! CLI for the in-tree analyzer.
//!
//! ```text
//! cargo run -p splpg-lint -- check [--root <dir>]   # scan crates/*/src
//! cargo run -p splpg-lint -- rules                  # list rules
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for rule in splpg_lint::RULE_NAMES {
                println!("{rule}\n    {}\n", splpg_lint::describe(rule));
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: splpg-lint <check [--root <dir>] | rules>");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("splpg-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("splpg-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if !root.join("crates").is_dir() {
        eprintln!(
            "splpg-lint: no `crates/` directory under {} (run from the workspace root or pass --root)",
            root.display()
        );
        return ExitCode::from(2);
    }
    match splpg_lint::check_workspace(&root) {
        Ok(report) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            if report.diagnostics.is_empty() {
                println!(
                    "splpg-lint: OK ({} files, {} rules)",
                    report.files_scanned,
                    splpg_lint::RULE_NAMES.len()
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "splpg-lint: {} violation(s) across {} files scanned",
                    report.diagnostics.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("splpg-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
