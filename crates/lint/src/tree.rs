//! Pass 2 of the analyzer: token trees and scope annotation.
//!
//! The masked lines produced by [`crate::lexer::SourceFile`] are flat
//! text; several v2 rules need *structure*: real loop nesting (not brace
//! counting), function and closure extents, and the argument ranges of
//! calls that dispatch work onto `splpg-par`. This module tokenizes the
//! masked code, matches `{}`/`()`/`[]` delimiters, and annotates every
//! token with its scope context:
//!
//! * `loop_depth` — number of enclosing `for`/`while`/`loop` bodies,
//!   with `impl … for … {` and higher-ranked `for<…>` bounds exempt and
//!   item scopes (`fn`, `impl`, `mod`, `trait`) resetting the count;
//! * the innermost enclosing named `fn` (index into [`TokenTree::fns`]);
//! * function bodies ([`FnDef`]) and `let`-bound closures
//!   ([`ClosureDef`]) with their token ranges, which the symbol pass
//!   ([`crate::symbols`]) uses to propagate "runs inside a parallel
//!   region" through dispatch-by-name;
//! * the argument ranges of calls to the `splpg-par` entry points
//!   ([`PAR_ENTRY_POINTS`]), the seeds of that propagation.
//!
//! The tokenizer is intentionally not a full Rust lexer — generics are
//! not bracket-matched (`<`/`>` stay ordinary punctuation), and closure
//! detection is a heuristic over the preceding token — but it only ever
//! sees masked code, so comments and string contents can never open a
//! scope or a parallel region.

use crate::lexer::SourceFile;

/// Calls whose closure arguments run on `splpg-par` worker threads.
///
/// `parallel_for`/`parallel_for_mut`/`parallel_map_chunks` are the
/// fork-join pool's methods, `actor_scope` hosts the cluster actors,
/// `scope`/`spawn` cover `std::thread` use inside `splpg-par`/`splpg-net`
/// themselves, and `par_dispatch`/`par_parts` are the kernel dispatch
/// helpers in `splpg-tensor`.
pub const PAR_ENTRY_POINTS: &[&str] = &[
    "parallel_for",
    "parallel_for_mut",
    "parallel_map_chunks",
    "actor_scope",
    "par_dispatch",
    "par_parts",
    "scope",
    "spawn",
];

/// Token classification. Punctuation is longest-matched so compound
/// operators (`+=`, `::`, `<<`, `..`) arrive as single tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal, including suffix (`1_000u64`, `0.5f32`).
    Number,
    /// Operator or delimiter.
    Punct,
}

/// One token of masked code.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text exactly as written.
    pub text: String,
    /// 0-based line index into the [`SourceFile`].
    pub line: usize,
    /// Classification.
    pub kind: TokenKind,
}

/// Per-token scope context filled in by the annotation pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenCtx {
    /// Number of enclosing loop bodies (item scopes reset this).
    pub loop_depth: u16,
    /// Innermost enclosing named function (index into [`TokenTree::fns`]).
    pub fn_idx: Option<u32>,
}

/// A named `fn` definition and its body token range.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Body tokens, `start..end` (exclusive), inside the braces.
    pub body: (usize, usize),
}

/// A `let`-bound closure (`let run = |…| { … };`) and its body range.
///
/// These matter because the workspace's kernels bind a closure to a name
/// and pass the *name* to the pool; the symbol pass must follow that
/// reference to mark the body as a parallel region.
#[derive(Debug, Clone)]
pub struct ClosureDef {
    /// The binding's name.
    pub name: String,
    /// Body tokens, `start..end` (exclusive).
    pub body: (usize, usize),
}

/// The fully analyzed token structure of one file.
#[derive(Debug)]
pub struct TokenTree {
    /// Flat token stream.
    pub tokens: Vec<Token>,
    /// Matching partner index per delimiter token (`{}`/`()`/`[]`).
    pub partner: Vec<Option<usize>>,
    /// Scope context per token.
    pub ctx: Vec<TokenCtx>,
    /// Named function definitions, in source order.
    pub fns: Vec<FnDef>,
    /// `let`-bound closures, in source order.
    pub closures: Vec<ClosureDef>,
    /// Argument ranges (`start..end`, exclusive) of direct calls to
    /// [`PAR_ENTRY_POINTS`].
    pub par_call_args: Vec<(usize, usize)>,
    /// Whether every delimiter found a partner. Unbalanced files (macro
    /// tricks the lexer cannot see through) degrade gracefully: scope
    /// annotation stops at the imbalance, line rules still run.
    pub balanced: bool,
}

impl TokenTree {
    /// Tokenizes and annotates the masked code of `file`.
    pub fn build(file: &SourceFile) -> TokenTree {
        let tokens = tokenize(file);
        let partner = match_delims(&tokens);
        let mut tree = TokenTree {
            ctx: vec![TokenCtx::default(); tokens.len()],
            tokens,
            partner,
            fns: Vec::new(),
            closures: Vec::new(),
            par_call_args: Vec::new(),
            balanced: true,
        };
        tree.balanced = tree.partner.iter().zip(&tree.tokens).all(|(p, t)| {
            p.is_some() || !matches!(t.text.as_str(), "{" | "}" | "(" | ")" | "[" | "]")
        });
        let end = tree.tokens.len();
        tree.annotate(0, end, TokenCtx::default());
        tree.find_par_calls();
        tree
    }

    /// Whether token `i` sits inside a `#[cfg(test)]` region.
    pub fn in_test(&self, file: &SourceFile, i: usize) -> bool {
        file.lines[self.tokens[i].line].in_test
    }

    /// Annotates `start..end` (a brace-delimited sibling sequence) with
    /// `ctx`, recursing into groups with updated context.
    fn annotate(&mut self, start: usize, end: usize, ctx: TokenCtx) {
        #[derive(Default)]
        struct Pending {
            fn_name: Option<String>,
            loop_kw: bool,
            impl_kw: bool,
            item_kw: bool,
        }
        let mut pending = Pending::default();
        let mut i = start;
        while i < end {
            self.ctx[i] = ctx;
            let text = self.tokens[i].text.clone();
            match text.as_str() {
                "fn" => {
                    if let Some(next) = self.tokens.get(i + 1) {
                        if next.kind == TokenKind::Ident {
                            pending.fn_name = Some(next.text.clone());
                        }
                    }
                }
                "for" => {
                    // `for<'a> Fn(…)` is a higher-ranked bound, not a loop.
                    let hrtb = self.tokens.get(i + 1).is_some_and(|t| t.text == "<");
                    if !hrtb && !pending.impl_kw {
                        pending.loop_kw = true;
                    }
                }
                "while" | "loop" => pending.loop_kw = true,
                "impl" => pending.impl_kw = true,
                "mod" | "trait" => pending.item_kw = true,
                ";" => pending = Pending::default(),
                "|" | "||" if self.closure_starts_at(i) => {
                    i = self.annotate_closure(i, end, ctx);
                    pending = Pending::default();
                    continue;
                }
                "{" => {
                    let Some(close) = self.partner[i] else { break };
                    self.ctx[i] = ctx;
                    self.ctx[close] = ctx;
                    let inner = if pending.loop_kw && !pending.impl_kw {
                        TokenCtx { loop_depth: ctx.loop_depth.saturating_add(1), ..ctx }
                    } else if let Some(name) = pending.fn_name.take() {
                        let fn_idx = self.fns.len() as u32;
                        self.fns.push(FnDef { name, body: (i + 1, close) });
                        TokenCtx { loop_depth: 0, fn_idx: Some(fn_idx) }
                    } else if pending.impl_kw || pending.item_kw {
                        TokenCtx { loop_depth: 0, fn_idx: None }
                    } else {
                        ctx
                    };
                    self.annotate(i + 1, close, inner);
                    pending = Pending::default();
                    i = close + 1;
                    continue;
                }
                "(" | "[" => {
                    let Some(close) = self.partner[i] else { break };
                    self.ctx[i] = ctx;
                    self.ctx[close] = ctx;
                    self.annotate(i + 1, close, ctx);
                    i = close + 1;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Whether the `|` / `||` at `i` opens a closure rather than acting
    /// as a binary operator: true when the previous token cannot end an
    /// operand (or is the `move` keyword).
    fn closure_starts_at(&self, i: usize) -> bool {
        match self.prev_token(i) {
            None => true,
            Some(p) => {
                let t = self.tokens[p].text.as_str();
                if self.tokens[p].kind == TokenKind::Ident {
                    matches!(t, "move" | "return" | "else" | "in" | "if" | "match")
                } else {
                    // After a closing delimiter, number, or quote the bar
                    // is a binary operator (or a pattern alternative).
                    !matches!(t, ")" | "]" | "}" | "\"") && self.tokens[p].kind != TokenKind::Number
                }
            }
        }
    }

    /// Annotates a closure starting at the `|`/`||` token `i`; records a
    /// [`ClosureDef`] when the closure is `let`-bound to a name. Returns
    /// the index to resume scanning at.
    fn annotate_closure(&mut self, i: usize, end: usize, ctx: TokenCtx) -> usize {
        self.ctx[i] = ctx;
        // Find the end of the parameter list.
        let params_end = if self.tokens[i].text == "||" {
            i
        } else {
            let mut j = i + 1;
            loop {
                match self.tokens.get(j) {
                    None => return i + 1,
                    Some(t) if t.text == "|" => break j,
                    Some(t) if t.text == ";" => return i + 1, // not a closure after all
                    Some(t) => {
                        self.ctx[j] = ctx;
                        if matches!(t.text.as_str(), "(" | "[" | "{") {
                            match self.partner[j] {
                                Some(c) => {
                                    self.annotate(j + 1, c, ctx);
                                    self.ctx[c] = ctx;
                                    j = c + 1;
                                    continue;
                                }
                                None => return i + 1,
                            }
                        }
                        j += 1;
                    }
                }
            }
        };
        // Body: a brace group, or an expression running to the next `,`
        // or `;` at this level (or the end of the enclosing group).
        let body_start = params_end + 1;
        let body_end = match self.tokens.get(body_start) {
            Some(t) if t.text == "{" => match self.partner[body_start] {
                Some(c) => c + 1,
                None => return body_start,
            },
            _ => {
                let mut j = body_start;
                while j < end {
                    match self.tokens[j].text.as_str() {
                        "," | ";" => break,
                        "(" | "[" | "{" => match self.partner[j] {
                            Some(c) => j = c + 1,
                            None => break,
                        },
                        _ => j += 1,
                    }
                }
                j
            }
        };
        if let Some(name) = self.closure_binding_name(i) {
            self.closures.push(ClosureDef { name, body: (body_start, body_end) });
        }
        // Closure bodies inherit loop context: a closure built inside a
        // loop is (in this workspace) invoked inside it too.
        self.annotate(body_start, body_end.min(end), ctx);
        body_start
    }

    /// For a closure starting at token `i`, returns the binding name when
    /// the preceding tokens are `let [mut] NAME = [move]`.
    fn closure_binding_name(&self, i: usize) -> Option<String> {
        let mut j = self.prev_token(i)?;
        if self.tokens[j].text == "move" {
            j = self.prev_token(j)?;
        }
        if self.tokens[j].text != "=" {
            return None;
        }
        let name_at = self.prev_token(j)?;
        let name = &self.tokens[name_at];
        if name.kind != TokenKind::Ident {
            return None;
        }
        let let_at = self.prev_token(name_at)?;
        let kw = self.tokens[let_at].text.as_str();
        if kw == "let" || (kw == "mut" && self.prev_token(let_at).is_some_and(|k| self.tokens[k].text == "let")) {
            Some(name.text.clone())
        } else {
            None
        }
    }

    fn prev_token(&self, i: usize) -> Option<usize> {
        i.checked_sub(1)
    }

    /// Records the argument ranges of direct [`PAR_ENTRY_POINTS`] calls.
    fn find_par_calls(&mut self) {
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            if t.kind != TokenKind::Ident || !PAR_ENTRY_POINTS.contains(&t.text.as_str()) {
                continue;
            }
            let Some(open) = self.tokens.get(i + 1).filter(|n| n.text == "(").map(|_| i + 1)
            else {
                continue;
            };
            if let Some(close) = self.partner[open] {
                self.par_call_args.push((open + 1, close));
            }
        }
    }
}

/// Tokenizes the masked code of every line into one flat stream.
fn tokenize(file: &SourceFile) -> Vec<Token> {
    // Compound operators, longest first so e.g. `<<=` wins over `<<`.
    const PUNCTS: &[&str] = &[
        "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<",
        ">>", "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "..",
    ];
    let mut out = Vec::new();
    for (line_idx, line) in file.lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    line: line_idx,
                    kind: TokenKind::Ident,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // A `.` continues the literal only when a digit follows
                // (`0.5`, not the range `0..5` or a method call `1.max(x)`).
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    line: line_idx,
                    kind: TokenKind::Number,
                });
                continue;
            }
            // Punctuation: longest compound match, else a single char.
            let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
            let matched = PUNCTS.iter().find(|p| rest.starts_with(**p));
            let text = match matched {
                Some(p) => (*p).to_string(),
                None => c.to_string(),
            };
            i += text.chars().count();
            out.push(Token { text, line: line_idx, kind: TokenKind::Punct });
        }
    }
    out
}

/// Matches `{}`/`()`/`[]` pairs over the token stream.
fn match_delims(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut partner = vec![None; tokens.len()];
    let mut stack: Vec<(usize, char)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.text.as_str() {
            "{" => stack.push((i, '}')),
            "(" => stack.push((i, ')')),
            "[" => stack.push((i, ']')),
            "}" | ")" | "]" => {
                if let Some(&(open, want)) = stack.last() {
                    if t.text.starts_with(want) {
                        stack.pop();
                        partner[open] = Some(i);
                        partner[i] = Some(open);
                    }
                }
            }
            _ => {}
        }
    }
    partner
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(src: &str) -> (SourceFile, TokenTree) {
        let f = SourceFile::analyze(src);
        let t = TokenTree::build(&f);
        (f, t)
    }

    fn ctx_of<'a>(t: &'a TokenTree, text: &str) -> &'a TokenCtx {
        let i = t.tokens.iter().position(|tok| tok.text == text).expect("token present");
        &t.ctx[i]
    }

    #[test]
    fn loop_depth_tracks_real_nesting() {
        let (_, t) = tree("fn f() { for i in 0..3 { while go { inner(); } } tail(); }\n");
        assert_eq!(ctx_of(&t, "inner").loop_depth, 2);
        assert_eq!(ctx_of(&t, "tail").loop_depth, 0);
    }

    #[test]
    fn impl_for_and_hrtb_are_not_loops() {
        let (_, t) = tree("impl Builder for Factory { fn build(&self) { body(); } }\n");
        assert_eq!(ctx_of(&t, "body").loop_depth, 0);
        let (_, t) = tree("fn f(g: impl for<'a> Fn(&'a u32)) { body(); }\n");
        assert_eq!(ctx_of(&t, "body").loop_depth, 0);
    }

    #[test]
    fn items_reset_loop_depth() {
        let (_, t) = tree("fn f() { loop { fn g() { body(); } } }\n");
        assert_eq!(ctx_of(&t, "body").loop_depth, 0);
    }

    #[test]
    fn fn_defs_and_enclosing_fn_recorded() {
        let (_, t) = tree("fn alpha() { a(); }\nfn beta() { for x in y { b(); } }\n");
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        let b_ctx = ctx_of(&t, "b");
        assert_eq!(b_ctx.fn_idx.map(|i| t.fns[i as usize].name.as_str()), Some("beta"));
        assert_eq!(b_ctx.loop_depth, 1);
    }

    #[test]
    fn let_bound_closures_recorded_with_bodies() {
        let (_, t) = tree("fn f() { let run = |a: usize, b: &mut [f32]| { work(a, b); };\n    go(run); }\n");
        assert_eq!(t.closures.len(), 1);
        assert_eq!(t.closures[0].name, "run");
        let (s, e) = t.closures[0].body;
        assert!(t.tokens[s..e].iter().any(|tok| tok.text == "work"));
    }

    #[test]
    fn closure_detection_skips_binary_or() {
        let (_, t) = tree("fn f() { let x = a | b; let y = c || d; }\n");
        assert!(t.closures.is_empty());
    }

    #[test]
    fn par_call_args_found_multiline() {
        let (_, t) = tree(
            "fn f(pool: &Pool) {\n    pool.parallel_for_mut(out, m, 1, |row0, chunk| {\n        hit();\n    });\n}\n",
        );
        assert_eq!(t.par_call_args.len(), 1);
        let (s, e) = t.par_call_args[0];
        assert!(t.tokens[s..e].iter().any(|tok| tok.text == "hit"));
    }

    #[test]
    fn compound_punct_and_float_literals_tokenize_whole() {
        let (_, t) = tree("fn f() { x += 1.5f32; y <<= 2; z = 0..n; }\n");
        let texts: Vec<&str> = t.tokens.iter().map(|tok| tok.text.as_str()).collect();
        assert!(texts.contains(&"+="));
        assert!(texts.contains(&"1.5f32"));
        assert!(texts.contains(&"<<="));
        assert!(texts.contains(&".."));
    }

    #[test]
    fn unbalanced_input_degrades_gracefully() {
        let (_, t) = tree("fn f() { if x { y();\n");
        assert!(!t.balanced);
    }
}
