// Fixture: the deterministic equivalents pass, and a reasoned pragma can
// keep a genuine lookup-only hash table.
use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn histogram(values: &[usize]) -> Vec<(usize, usize)> {
    let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
    for &v in values {
        *hist.entry(v).or_insert(0) += 1;
    }
    hist.into_iter().collect()
}

pub fn dedup(values: &[u32]) -> Vec<u32> {
    let set: BTreeSet<u32> = values.iter().copied().collect();
    set.into_iter().collect()
}

// splpg-lint: allow(hash-iter) — O(1) membership probe, never iterated
pub fn probe(seen: &std::collections::HashSet<u32>, v: u32) -> bool {
    seen.contains(&v)
}

/// Mentions of HashMap in doc comments or strings must not fire:
/// a `HashMap` iterates in random order, says this sentence.
pub fn describe() -> &'static str {
    "do not use HashMap here"
}

#[cfg(test)]
mod tests {
    // Test code is out of scope for hash-iter.
    use std::collections::HashMap;

    #[test]
    fn scratch_map_is_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
