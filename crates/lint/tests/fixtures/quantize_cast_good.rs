// Quantization-style narrowing in a compression hot path, done right:
// masked values through try_from, and the one float->code cast clamped
// to the target range with a pragma naming the invariant.

fn codec_byte(version: u8, structure: u8, features: u8) -> u8 {
    // Masked to the field width first: try_from can never fail, and the
    // lint sees no bare narrowing `as`.
    u8::try_from(((u16::from(version) << 4) | u16::from(features << 2) | u16::from(structure)) & 0xff)
        .expect("invariant: masked to one byte")
}

fn quantize(x: f32, lo: f32, scale: f32) -> u8 {
    let t = ((x - lo) / scale).round().clamp(0.0, 255.0);
    // splpg-lint: allow(as-cast-truncation) — clamped to [0, 255] on the line above
    t as u8
}

fn dequantize(code: u8, lo: f32, scale: f32) -> f32 {
    lo + f32::from(code) * scale
}

fn low_halves(ids: &[u64]) -> Vec<u16> {
    ids.iter().map(|&v| u16::try_from(v & 0xffff).expect("invariant: masked")).collect()
}
