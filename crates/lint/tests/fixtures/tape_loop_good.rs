// Fixture: the tape is hoisted out of the loop and reset per iteration,
// so its arena is recycled; a reasoned pragma keeps an intentional
// cold-start site.
pub fn train(batches: &[Batch]) -> f32 {
    let mut tape = Tape::new();
    let mut loss = 0.0;
    for batch in batches {
        tape.reset();
        loss += step(&mut tape, batch);
    }
    loss
}

pub fn cold_start_baseline(reps: usize) {
    for _ in 0..reps {
        // splpg-lint: allow(tape-in-loop) — measuring cold-allocation cost is the point
        let _tape = Tape::new();
    }
}

impl TapeSource for Factory {
    fn fresh(&self) -> Tape {
        Tape::new()
    }
}
