// Checked narrowing and widening casts: both fine in hot paths.

fn pack(ids: &[usize]) -> Vec<u32> {
    let mut out = Vec::with_capacity(ids.len());
    for &i in ids {
        out.push(u32::try_from(i).expect("invariant: node ids fit u32"));
    }
    out
}

fn widen(x: u32) -> u64 {
    u64::from(x)
}
