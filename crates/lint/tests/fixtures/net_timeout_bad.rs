// Raw transport traffic outside the wrapper layer: a bare recv hangs the
// quorum protocol forever on the first dropped frame.

fn broadcast(hub: &mut MasterHub, frame: Frame) {
    hub.send(frame).expect("send");
    let _reply = hub.recv().expect("reply");
    let _late = hub.recv_timeout(LONG_DEADLINE).expect("late");
}
