// Sanctioned randomness: one top-level construction from the run seed,
// and derived per-item streams everywhere order could vary.

fn per_item(seed: u64, frontier: &[u32]) {
    for &v in frontier {
        let mut rng = splpg_rng::derive_stream(seed, u64::from(v));
        let _ = rng.next_u64();
    }
}

fn on_worker(pool: &Pool, seed: u64, n: usize) {
    pool.parallel_for(n, 1, |i| {
        let mut rng = splpg_rng::derive_stream(seed, i as u64);
        let _ = rng.next_u64();
    });
}

fn top_level(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
