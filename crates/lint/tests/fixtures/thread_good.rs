// Fixture: work routed through the pool passes; a reasoned pragma keeps
// a legitimate long-lived-thread site.
pub fn fan_out(xs: &[u64]) -> u64 {
    splpg_par::global().parallel_map_chunks(xs, 1, |_, &x| x * 2).into_iter().sum()
}

pub fn workers() {
    // splpg-lint: allow(thread-spawn) — long-lived worker replicas with barrier sync
    std::thread::scope(|_scope| {});
}
