// Fixture: wall-clock reads in library code.
use std::time::Instant;

pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_nanos())
}

pub fn stamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
