// Order-sensitive accumulation inside parallel regions: the three shapes
// the rule must catch — an inline closure, a let-bound closure dispatched
// by name, and a helper fn called from inside a parallel region.

fn inline(pool: &Pool, out: &mut [f32], x: &[f32]) {
    pool.parallel_for(x.len(), 64, |i| {
        out[i % 8] += x[i];
    });
}

fn named(pool: &Pool, y: &mut [f32], x: &[f32]) {
    let run = |row0: usize, chunk: &mut [f32]| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            *slot += x[row0 + j];
        }
    };
    pool.parallel_for_mut(y, 8, 1, run);
}

fn helper(out: &mut [f32], x: &[f32], i: usize) {
    out[i / 2] -= x[i];
}

fn dispatched(pool: &Pool, out: &mut [f32], x: &[f32]) {
    pool.parallel_for(x.len(), 64, |i| helper(out, x, i));
}
