// Deterministic accumulation shapes the rule must leave alone:
// chunk-local accumulators, integer counters, and serial loops.

fn chunk_local(pool: &Pool, x: &[f32]) -> Vec<f32> {
    pool.parallel_map_chunks(x, 64, |_c0, chunk| {
        let mut acc = 0.0f32;
        for &v in chunk {
            acc += v;
        }
        acc
    })
}

fn counting(pool: &Pool, stats: &mut Stats, x: &[u32]) {
    pool.parallel_for(x.len(), 64, |_i| {
        stats.seen += 1;
    });
}

fn serial(out: &mut [f32], x: &[f32]) {
    for i in 0..x.len() {
        out[i] += x[i];
    }
}
