// Narrowing `as` casts in hot indexing paths: an oversized id silently
// wraps instead of failing.

fn pack(ids: &[usize]) -> Vec<u32> {
    let mut out = Vec::with_capacity(ids.len());
    for &i in ids {
        out.push(i as u32);
    }
    out
}

fn small(x: u64) -> u16 {
    x as u16
}
