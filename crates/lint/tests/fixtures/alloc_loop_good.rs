// Fixture: scratch buffers are hoisted out of the loop and cleared per
// iteration; with_capacity outputs are sized once before the loop. A
// reasoned pragma keeps an intentional per-iteration allocation.
pub fn expand(frontier: &[u32]) -> Vec<u32> {
    let mut nbrs = Vec::with_capacity(frontier.len() * 8);
    let mut scratch = Vec::new();
    for &v in frontier {
        scratch.clear();
        fetch(v, &mut scratch);
        nbrs.extend_from_slice(&scratch);
    }
    nbrs
}

pub fn blocks(seeds: &[u32], parts: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(parts);
    for range in partition(seeds.len(), parts) {
        // splpg-lint: allow(alloc-in-hot-loop) — one owned batch per block, moved to the caller
        let block = Vec::new();
        out.push(build(range, block));
    }
    out
}
