// RNG construction the determinism rules forbid: per-item generators
// rebuilt inside a loop, hand-mixed seeds, and construction on worker
// threads.

fn per_item(seed: u64, frontier: &[u32]) {
    for &v in frontier {
        let mut rng = StdRng::seed_from_u64(seed + u64::from(v));
        let _ = rng.next_u64();
    }
}

fn hand_mixed(seed: u64, worker: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ (worker + 1) << 32)
}

fn on_worker(pool: &Pool, seed: u64, n: usize) {
    pool.parallel_for(n, 1, |i| {
        let mut mix = SplitMix64::new(seed.wrapping_add(i as u64));
        let _ = mix.next_u64();
    });
}
