// Fixture: Result propagation and invariant-bearing expects pass; test
// code may unwrap freely.
pub fn parse(bytes: &[u8]) -> Result<u32, std::array::TryFromSliceError> {
    let arr: [u8; 4] = bytes[..4].try_into()?;
    Ok(u32::from_le_bytes(arr))
}

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().expect("invariant: caller guarantees a non-empty batch")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v: Result<u32, ()> = Ok(3);
        assert_eq!(v.unwrap(), 3);
    }
}
