// Fixture: hash containers in a deterministic crate's library code.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn histogram(values: &[usize]) -> Vec<(usize, usize)> {
    let mut hist: HashMap<usize, usize> = HashMap::new();
    for &v in values {
        *hist.entry(v).or_insert(0) += 1;
    }
    // Iteration order here is randomized per process.
    hist.into_iter().collect()
}

pub fn dedup(values: &[u32]) -> Vec<u32> {
    let set: HashSet<u32> = values.iter().copied().collect();
    set.into_iter().collect()
}
