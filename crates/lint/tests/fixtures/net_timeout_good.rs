// Transport traffic through the retry/timeout wrappers, which own the
// deadline ladder and the fault accounting.

fn broadcast(net: &mut MasterNet, frame: Frame) -> Result<Frame, NetError> {
    net.send_with_retry(frame)?;
    net.recv_with_deadline()
}
