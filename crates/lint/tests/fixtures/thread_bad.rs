// Fixture: ad-hoc threading outside splpg-par.
pub fn fan_out(xs: &[u64]) -> u64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = xs.iter().map(|&x| scope.spawn(move || x * 2)).collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    })
}

pub fn detach() {
    std::thread::spawn(|| {});
}
