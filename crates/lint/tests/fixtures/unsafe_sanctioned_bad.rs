//! Fixture: sanctioned-unsafe misuse — a bare block, a reason-less
//! pragma, and a file-wide pragma (checked under the
//! `crates/net/src/shm.rs` path).

pub fn bare(ptr: *const u8, len: usize) -> &'static [u8] {
    unsafe { std::slice::from_raw_parts(ptr, len) }
}

// splpg-lint: allow(forbid-unsafe)
pub fn reasonless(ptr: *const u8, len: usize) -> &'static [u8] {
    unsafe { std::slice::from_raw_parts(ptr, len) }
}

// splpg-lint: allow-file(forbid-unsafe) — blanket licences are not sanctioned
pub fn blanket() {}
