//! Fixture: the sanctioned-unsafe shape — every block carries its own
//! reasoned pragma (checked under the `crates/net/src/shm.rs` path).

pub fn view(ptr: *const u8, len: usize) -> &'static [u8] {
    // splpg-lint: allow(forbid-unsafe) — mmap result slice, length validated by the caller
    unsafe { std::slice::from_raw_parts(ptr, len) }
}

pub struct Mapping(*mut u8);

// splpg-lint: allow(forbid-unsafe) — the mapping is shared and immutable after seal
unsafe impl Send for Mapping {}
