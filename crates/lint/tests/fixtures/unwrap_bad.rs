// Fixture: panicking extraction in I/O/solver-facing library code.
pub fn parse(bytes: &[u8]) -> u32 {
    let arr: [u8; 4] = bytes[..4].try_into().unwrap();
    u32::from_le_bytes(arr)
}

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().expect("non-empty input")
}
