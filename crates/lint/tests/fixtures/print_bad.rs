// Fixture: printing from library code.
pub fn report(total: usize) {
    println!("total = {total}");
}

pub fn warn(msg: &str) {
    eprintln!("warning: {msg}");
}
