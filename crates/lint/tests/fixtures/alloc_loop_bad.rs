// Fixture: fresh empty Vecs inside sampling hot loops regrow from zero
// capacity every hop/frontier node.
pub fn expand(frontier: &[u32]) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(frontier.len());
    for &v in frontier {
        let mut nbrs = Vec::new();
        fetch(v, &mut nbrs);
        out.push(nbrs);
    }
    out
}

pub fn hops(depth: usize) {
    let mut hop = 0;
    while hop < depth {
        let scratch = vec![0u32; 64];
        consume(&scratch);
        hop += 1;
    }
}
