// Fixture: a fresh tape per iteration reallocates the whole autodiff
// working set every step.
pub fn train(batches: &[Batch]) -> f32 {
    let mut loss = 0.0;
    for batch in batches {
        let mut tape = Tape::new();
        loss += step(&mut tape, batch);
    }
    loss
}

pub fn poll() {
    while running() {
        let _tape = Tape::new();
    }
}
