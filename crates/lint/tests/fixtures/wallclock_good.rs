// Fixture: Duration values are fine — only clock *reads* are banned —
// and a reasoned pragma can keep a reported preprocessing timing.
use std::time::Duration;

pub fn budget() -> Duration {
    Duration::from_millis(250)
}

pub fn timed_section() -> Duration {
    // splpg-lint: allow(wallclock) — preprocessing timing is part of the reported result
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
