// Fixture: libraries format and return; mentions in docs/strings are fine.
/// Produces the line a caller may println! if it wants to.
pub fn report(total: usize) -> String {
    format!("total = {total}")
}

pub fn macro_name() -> &'static str {
    "println!"
}
