//! Fixture-based rule tests: every rule must both fire on its bad
//! fixture and stay silent on its good fixture (which also exercises the
//! allow-pragma escape hatch).

use splpg_lint::check_source;

/// Rule names firing in `src` when checked under `path`, deduplicated.
fn fired(path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = check_source(path, src).into_iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

/// Diagnostics other than the (expected) missing `forbid(unsafe_code)`
/// header, which non-`lib.rs` fixtures never carry.
fn fired_content(path: &str, src: &str) -> Vec<&'static str> {
    fired(path, src).into_iter().filter(|r| *r != "forbid-unsafe").collect()
}

#[test]
fn hash_iter_fires_on_bad_fixture() {
    let d = check_source(
        "crates/graph/src/fixture.rs",
        include_str!("fixtures/hash_iter_bad.rs"),
    );
    let hits: Vec<_> = d.iter().filter(|d| d.rule == "hash-iter").collect();
    assert!(hits.len() >= 4, "HashMap/HashSet uses + iterations: {hits:?}");
    // Diagnostics carry file:line coordinates.
    assert!(hits.iter().all(|d| d.line > 0 && d.path.ends_with("fixture.rs")));
}

#[test]
fn hash_iter_passes_good_fixture() {
    let rules = fired_content(
        "crates/graph/src/fixture.rs",
        include_str!("fixtures/hash_iter_good.rs"),
    );
    assert!(rules.is_empty(), "good fixture must be clean: {rules:?}");
}

#[test]
fn hash_iter_ignores_non_deterministic_crates() {
    let rules = fired_content(
        "crates/tensor/src/fixture.rs",
        include_str!("fixtures/hash_iter_bad.rs"),
    );
    assert!(rules.is_empty(), "tensor is not a deterministic-scoped crate: {rules:?}");
}

#[test]
fn thread_spawn_fires_on_bad_fixture() {
    let rules = fired_content(
        "crates/gnn/src/fixture.rs",
        include_str!("fixtures/thread_bad.rs"),
    );
    assert_eq!(rules, vec!["thread-spawn"]);
}

#[test]
fn thread_spawn_passes_good_fixture_and_par() {
    let good = fired_content(
        "crates/gnn/src/fixture.rs",
        include_str!("fixtures/thread_good.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
    // splpg-par itself is the one place threads may be spawned.
    let par = fired_content("crates/par/src/fixture.rs", include_str!("fixtures/thread_bad.rs"));
    assert!(par.is_empty(), "{par:?}");
}

#[test]
fn wallclock_fires_on_bad_fixture() {
    let rules = fired_content(
        "crates/dist/src/fixture.rs",
        include_str!("fixtures/wallclock_bad.rs"),
    );
    assert_eq!(rules, vec!["wallclock"]);
}

#[test]
fn wallclock_passes_good_fixture_and_bench() {
    let good = fired_content(
        "crates/dist/src/fixture.rs",
        include_str!("fixtures/wallclock_good.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
    let bench =
        fired_content("crates/bench/src/fixture.rs", include_str!("fixtures/wallclock_bad.rs"));
    assert!(bench.is_empty(), "bench may read clocks: {bench:?}");
}

#[test]
fn unwrap_fires_on_bad_fixture_in_all_scoped_crates() {
    for path in [
        "crates/graph/src/io.rs",
        "crates/linalg/src/fixture.rs",
        "crates/datasets/src/fixture.rs",
    ] {
        let rules = fired_content(path, include_str!("fixtures/unwrap_bad.rs"));
        assert_eq!(rules, vec!["unwrap-expect"], "scope {path}");
    }
}

#[test]
fn unwrap_passes_good_fixture_and_unscoped_files() {
    let good = fired_content("crates/linalg/src/fixture.rs", include_str!("fixtures/unwrap_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    // graph is only scoped at io.rs; the rest of the crate may panic on
    // internal invariants.
    let other = fired_content("crates/graph/src/csr.rs", include_str!("fixtures/unwrap_bad.rs"));
    assert!(other.is_empty(), "{other:?}");
}

#[test]
fn forbid_unsafe_fires_on_bare_crate_root() {
    let d = check_source("crates/graph/src/lib.rs", include_str!("fixtures/forbid_bad.rs"));
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "forbid-unsafe");
    assert_eq!(d[0].line, 1);
}

#[test]
fn forbid_unsafe_passes_compliant_root_and_non_roots() {
    let good = fired("crates/graph/src/lib.rs", include_str!("fixtures/forbid_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    // Non-root files don't need the attribute.
    let non_root = fired("crates/graph/src/csr.rs", include_str!("fixtures/forbid_bad.rs"));
    assert!(non_root.is_empty(), "{non_root:?}");
}

#[test]
fn forbid_unsafe_sanctioned_module_needs_reasoned_pragma_per_block() {
    // The sanctioned shm module: pragma'd blocks are clean.
    let good =
        fired("crates/net/src/shm.rs", include_str!("fixtures/unsafe_sanctioned_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    // Bare blocks, reason-less pragmas, and allow-file blankets all fire.
    let d = check_source(
        "crates/net/src/shm.rs",
        include_str!("fixtures/unsafe_sanctioned_bad.rs"),
    );
    let hits: Vec<_> = d.iter().filter(|d| d.rule == "forbid-unsafe").collect();
    assert!(hits.len() >= 3, "bare + reasonless + file-wide: {hits:?}");
}

#[test]
fn forbid_unsafe_is_unsuppressible_outside_sanctioned_modules() {
    // The same pragma'd code in any other file still fires: the pragma
    // escape hatch only exists inside the sanctioned module list.
    let d = check_source(
        "crates/graph/src/csr.rs",
        include_str!("fixtures/unsafe_sanctioned_good.rs"),
    );
    let hits: Vec<_> = d.iter().filter(|d| d.rule == "forbid-unsafe").collect();
    assert_eq!(hits.len(), 2, "one per unsafe token: {hits:?}");
    assert!(hits.iter().all(|d| d.message.contains("sanctioned")));
}

#[test]
fn forbid_unsafe_sanctioned_crate_root_denies_instead_of_forbidding() {
    // net hosts the carve-out, so its root must carry deny(unsafe_code)…
    let deny = "#![deny(unsafe_code)]\n//! net root.\n";
    assert!(fired("crates/net/src/lib.rs", deny).is_empty());
    // …and a forbid-only net root is flagged (forbid would make the
    // module-level #[allow] a compile error, hiding the real policy).
    let forbid = "#![forbid(unsafe_code)]\n//! net root.\n";
    let d = check_source("crates/net/src/lib.rs", forbid);
    assert_eq!(d.len(), 1);
    assert!(d[0].message.contains("deny"), "{:?}", d[0]);
    // Other crates still require forbid; deny alone is not enough there.
    let d = check_source("crates/graph/src/lib.rs", deny);
    assert_eq!(d.len(), 1);
    assert!(d[0].message.contains("forbid"), "{:?}", d[0]);
}

#[test]
fn print_macro_fires_on_bad_fixture() {
    let rules = fired_content("crates/nn/src/fixture.rs", include_str!("fixtures/print_bad.rs"));
    assert_eq!(rules, vec!["print-macro"]);
}

#[test]
fn print_macro_passes_good_fixture_bench_and_binaries() {
    let good = fired_content("crates/nn/src/fixture.rs", include_str!("fixtures/print_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    let bench = fired_content("crates/bench/src/fixture.rs", include_str!("fixtures/print_bad.rs"));
    assert!(bench.is_empty(), "{bench:?}");
    let binary =
        fired_content("crates/lint/src/bin/tool.rs", include_str!("fixtures/print_bad.rs"));
    assert!(binary.is_empty(), "bin targets may print: {binary:?}");
    let main = fired_content("crates/lint/src/main.rs", include_str!("fixtures/print_bad.rs"));
    assert!(main.is_empty(), "main.rs may print: {main:?}");
}

#[test]
fn tape_in_loop_fires_on_bad_fixture() {
    let d = check_source(
        "crates/gnn/src/fixture.rs",
        include_str!("fixtures/tape_loop_bad.rs"),
    );
    let hits: Vec<_> = d.iter().filter(|d| d.rule == "tape-in-loop").collect();
    assert_eq!(hits.len(), 2, "for-loop and while-loop sites: {hits:?}");
}

#[test]
fn tape_in_loop_passes_good_fixture_and_binaries() {
    let good = fired_content(
        "crates/gnn/src/fixture.rs",
        include_str!("fixtures/tape_loop_good.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
    // Binaries (e.g. the bench's cold-start baseline) are exempt.
    let binary = fired_content(
        "crates/bench/src/bin/train_step.rs",
        include_str!("fixtures/tape_loop_bad.rs"),
    );
    assert!(binary.is_empty(), "bin targets may build throwaway tapes: {binary:?}");
}

#[test]
fn alloc_in_hot_loop_fires_on_bad_fixture() {
    let d = check_source(
        "crates/gnn/src/sampler.rs",
        include_str!("fixtures/alloc_loop_bad.rs"),
    );
    let hits: Vec<_> = d.iter().filter(|d| d.rule == "alloc-in-hot-loop").collect();
    assert_eq!(hits.len(), 2, "Vec::new and vec![…] sites: {hits:?}");
}

#[test]
fn alloc_in_hot_loop_passes_good_fixture_and_other_files() {
    let good = fired_content(
        "crates/gnn/src/sampler.rs",
        include_str!("fixtures/alloc_loop_good.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
    // Only the sampling hot-path files are in scope.
    let elsewhere = fired_content(
        "crates/gnn/src/trainer.rs",
        include_str!("fixtures/alloc_loop_bad.rs"),
    );
    assert!(elsewhere.is_empty(), "non-hot files may allocate in loops: {elsewhere:?}");
}

#[test]
fn float_accum_fires_on_bad_fixture() {
    // Three shapes: inline closure, let-bound closure dispatched by name,
    // helper fn called from a parallel region.
    let d = check_source("crates/linalg/src/fixture.rs", include_str!("fixtures/float_accum_bad.rs"));
    let hits: Vec<_> = d.iter().filter(|d| d.rule == "float-accum-in-par").collect();
    assert_eq!(hits.len(), 3, "{hits:?}");
}

#[test]
fn float_accum_passes_good_fixture_and_sanctioned_files() {
    let good =
        fired_content("crates/linalg/src/fixture.rs", include_str!("fixtures/float_accum_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    // The deterministic-reduction helpers themselves are exempt wholesale.
    for path in ["crates/tensor/src/kernels.rs", "crates/tensor/src/segment.rs"] {
        let f = fired_content(path, include_str!("fixtures/float_accum_bad.rs"));
        assert!(!f.contains(&"float-accum-in-par"), "{path}: {f:?}");
    }
}

#[test]
fn rng_not_derived_fires_on_bad_fixture() {
    // In-loop construction, hand-mixed seed, construction on a worker.
    let d = check_source("crates/gnn/src/fixture.rs", include_str!("fixtures/rng_derive_bad.rs"));
    let hits: Vec<_> = d.iter().filter(|d| d.rule == "rng-not-derived").collect();
    assert_eq!(hits.len(), 3, "{hits:?}");
}

#[test]
fn rng_not_derived_passes_good_fixture_and_rng_crate() {
    let good =
        fired_content("crates/gnn/src/fixture.rs", include_str!("fixtures/rng_derive_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    // splpg-rng implements derive_stream: it may mix seeds.
    let rng = fired_content("crates/rng/src/fixture.rs", include_str!("fixtures/rng_derive_bad.rs"));
    assert!(!rng.contains(&"rng-not-derived"), "{rng:?}");
}

#[test]
fn net_call_fires_on_bad_fixture() {
    let d = check_source("crates/dist/src/fixture.rs", include_str!("fixtures/net_timeout_bad.rs"));
    let hits: Vec<_> = d.iter().filter(|d| d.rule == "net-call-no-timeout").collect();
    assert_eq!(hits.len(), 3, "send, recv, recv_timeout: {hits:?}");
}

#[test]
fn net_call_passes_good_fixture_and_wrapper_layer() {
    let good =
        fired_content("crates/dist/src/fixture.rs", include_str!("fixtures/net_timeout_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    // The wrapper layer is where raw send/recv legitimately lives.
    let wrapper =
        fired_content("crates/dist/src/runtime.rs", include_str!("fixtures/net_timeout_bad.rs"));
    assert!(!wrapper.contains(&"net-call-no-timeout"), "{wrapper:?}");
}

#[test]
fn as_cast_fires_on_bad_fixture_in_every_hot_file() {
    for path in [
        "crates/tensor/src/kernels.rs",
        "crates/tensor/src/segment.rs",
        "crates/gnn/src/sampler.rs",
        "crates/net/src/compress.rs",
    ] {
        let d = check_source(path, include_str!("fixtures/as_cast_bad.rs"));
        let hits: Vec<_> = d.iter().filter(|d| d.rule == "as-cast-truncation").collect();
        assert_eq!(hits.len(), 2, "{path}: {hits:?}");
    }
}

#[test]
fn as_cast_passes_good_fixture_and_cold_files() {
    let good = fired_content("crates/gnn/src/sampler.rs", include_str!("fixtures/as_cast_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    let cold = fired_content("crates/graph/src/csr.rs", include_str!("fixtures/as_cast_bad.rs"));
    assert!(cold.is_empty(), "non-hot files may narrow: {cold:?}");
}

#[test]
fn quantization_casts_through_sanctioned_helpers_pass_in_compress() {
    // The compression module is a hot file: bare narrowing casts fire,
    // but the sanctioned quantization idioms (masked try_from, a clamped
    // float->code cast under a pragma naming the invariant) do not.
    let good = fired_content(
        "crates/net/src/compress.rs",
        include_str!("fixtures/quantize_cast_good.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
    let bad = fired_content("crates/net/src/compress.rs", include_str!("fixtures/as_cast_bad.rs"));
    assert!(bad.contains(&"as-cast-truncation"), "{bad:?}");
}

#[test]
fn seeded_bad_patterns_fire_in_workspace_hot_paths() {
    // The acceptance bar: dropping any bad-fixture pattern into a real
    // hot-path file must fail the same scan scripts/verify.sh runs.
    let cases: &[(&str, &str, &str)] = &[
        ("crates/linalg/src/solver.rs", include_str!("fixtures/float_accum_bad.rs"), "float-accum-in-par"),
        ("crates/gnn/src/negative.rs", include_str!("fixtures/rng_derive_bad.rs"), "rng-not-derived"),
        ("crates/dist/src/strategies.rs", include_str!("fixtures/net_timeout_bad.rs"), "net-call-no-timeout"),
        ("crates/gnn/src/sampler.rs", include_str!("fixtures/as_cast_bad.rs"), "as-cast-truncation"),
    ];
    for (path, src, rule) in cases {
        let f = fired(path, src);
        assert!(f.contains(rule), "{rule} must fire when seeded into {path}: {f:?}");
    }
}

#[test]
fn allow_file_pragma_and_stale_pragma_integration() {
    // allow-file covers every occurrence in the file…
    let src = "#![forbid(unsafe_code)]\n\
               // splpg-lint: allow-file(hash-iter) — id interner, lookup only\n\
               use std::collections::HashMap;\n\
               fn f(m: &HashMap<u32, u32>) -> usize { m.len() }\n";
    assert!(fired("crates/graph/src/lib.rs", src).is_empty());
    // …and a pragma that covers nothing is itself a violation.
    let stale = "#![forbid(unsafe_code)]\n\
                 // splpg-lint: allow(thread-spawn) — code moved to splpg-par long ago\n\
                 fn f() {}\n";
    let d = check_source("crates/graph/src/lib.rs", stale);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, "stale-pragma");
    assert_eq!(d[0].line, 2);
}

#[test]
fn json_golden_snapshot() {
    // Machine-readable output is a stable contract for CI/editors: the
    // exact bytes are pinned. Regenerate deliberately with
    // `SPLPG_BLESS=1 cargo test -p splpg-lint json_golden`.
    let diagnostics =
        check_source("crates/tensor/src/kernels.rs", include_str!("fixtures/as_cast_bad.rs"));
    let report = splpg_lint::Report { diagnostics, files_scanned: 1, timings: Vec::new() };
    let actual = splpg_lint::report_json(&report);
    let golden_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.json");
    if std::env::var("SPLPG_BLESS").is_ok() {
        std::fs::write(golden_path, format!("{actual}\n")).expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path).expect("read golden");
    assert_eq!(actual.trim_end(), golden.trim_end(), "JSON output drifted from the golden snapshot");
}

#[test]
fn cli_exit_codes_and_formats() {
    use std::process::Command;
    let exe = env!("CARGO_BIN_EXE_splpg-lint");

    // `rules` lists every rule and exits 0.
    let out = Command::new(exe).arg("rules").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in splpg_lint::RULE_NAMES {
        assert!(text.contains(rule), "rules listing missing {rule}");
    }

    // A violating mini-workspace: exit 1, and JSON mode reports it.
    let dir = std::env::temp_dir().join(format!("splpg_lint_cli_{}", std::process::id()));
    let src = dir.join("crates").join("graph").join("src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(src.join("lib.rs"), "use std::collections::HashMap;\n").expect("write");
    let root = dir.to_str().expect("utf8 tempdir");
    let out = Command::new(exe)
        .args(["check", "--root", root, "--format=json"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"violations\": 2"), "hash-iter + forbid-unsafe: {json}");
    assert!(json.contains("\"rule\":\"hash-iter\""), "{json}");

    // Clean mini-workspace: exit 0, timings print under --timings.
    std::fs::write(src.join("lib.rs"), "#![forbid(unsafe_code)]\n").expect("write");
    let out = Command::new(exe)
        .args(["check", "--root", root, "--timings", "--budget-ms", "60000"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("per-phase timings"));

    // Usage errors: exit 2.
    let out = Command::new(exe).args(["check", "--bogus"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pragma_reasons_survive_extra_rules_listed() {
    // One pragma can name several rules.
    let src = "#![forbid(unsafe_code)]\n\
               // splpg-lint: allow(hash-iter, wallclock) — fixture\n\
               use std::collections::HashMap; use std::time::Instant;\n";
    let d = check_source("crates/graph/src/lib.rs", src);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn workspace_scan_reports_zero_violations() {
    // The repo itself must stay clean — this is the same check
    // scripts/verify.sh runs, kept here so `cargo test` alone catches
    // regressions. CARGO_MANIFEST_DIR = crates/lint; the workspace root
    // is two levels up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("invariant: crates/lint sits two levels below the workspace root")
        .to_path_buf();
    let report = splpg_lint::check_workspace(&root).expect("scan");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "expected to scan the whole workspace");
    // The full v2 rule set must be active for the clean bill to mean
    // anything.
    assert_eq!(splpg_lint::RULE_NAMES.len(), 13, "v2 ships 13 rules");
    for rule in ["float-accum-in-par", "rng-not-derived", "net-call-no-timeout", "as-cast-truncation", "stale-pragma"] {
        assert!(splpg_lint::RULE_NAMES.contains(&rule), "missing v2 rule {rule}");
    }
}
