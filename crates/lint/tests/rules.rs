//! Fixture-based rule tests: every rule must both fire on its bad
//! fixture and stay silent on its good fixture (which also exercises the
//! allow-pragma escape hatch).

use splpg_lint::check_source;

/// Rule names firing in `src` when checked under `path`, deduplicated.
fn fired(path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = check_source(path, src).into_iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

/// Diagnostics other than the (expected) missing `forbid(unsafe_code)`
/// header, which non-`lib.rs` fixtures never carry.
fn fired_content(path: &str, src: &str) -> Vec<&'static str> {
    fired(path, src).into_iter().filter(|r| *r != "forbid-unsafe").collect()
}

#[test]
fn hash_iter_fires_on_bad_fixture() {
    let d = check_source(
        "crates/graph/src/fixture.rs",
        include_str!("fixtures/hash_iter_bad.rs"),
    );
    let hits: Vec<_> = d.iter().filter(|d| d.rule == "hash-iter").collect();
    assert!(hits.len() >= 4, "HashMap/HashSet uses + iterations: {hits:?}");
    // Diagnostics carry file:line coordinates.
    assert!(hits.iter().all(|d| d.line > 0 && d.path.ends_with("fixture.rs")));
}

#[test]
fn hash_iter_passes_good_fixture() {
    let rules = fired_content(
        "crates/graph/src/fixture.rs",
        include_str!("fixtures/hash_iter_good.rs"),
    );
    assert!(rules.is_empty(), "good fixture must be clean: {rules:?}");
}

#[test]
fn hash_iter_ignores_non_deterministic_crates() {
    let rules = fired_content(
        "crates/tensor/src/fixture.rs",
        include_str!("fixtures/hash_iter_bad.rs"),
    );
    assert!(rules.is_empty(), "tensor is not a deterministic-scoped crate: {rules:?}");
}

#[test]
fn thread_spawn_fires_on_bad_fixture() {
    let rules = fired_content(
        "crates/gnn/src/fixture.rs",
        include_str!("fixtures/thread_bad.rs"),
    );
    assert_eq!(rules, vec!["thread-spawn"]);
}

#[test]
fn thread_spawn_passes_good_fixture_and_par() {
    let good = fired_content(
        "crates/gnn/src/fixture.rs",
        include_str!("fixtures/thread_good.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
    // splpg-par itself is the one place threads may be spawned.
    let par = fired_content("crates/par/src/fixture.rs", include_str!("fixtures/thread_bad.rs"));
    assert!(par.is_empty(), "{par:?}");
}

#[test]
fn wallclock_fires_on_bad_fixture() {
    let rules = fired_content(
        "crates/dist/src/fixture.rs",
        include_str!("fixtures/wallclock_bad.rs"),
    );
    assert_eq!(rules, vec!["wallclock"]);
}

#[test]
fn wallclock_passes_good_fixture_and_bench() {
    let good = fired_content(
        "crates/dist/src/fixture.rs",
        include_str!("fixtures/wallclock_good.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
    let bench =
        fired_content("crates/bench/src/fixture.rs", include_str!("fixtures/wallclock_bad.rs"));
    assert!(bench.is_empty(), "bench may read clocks: {bench:?}");
}

#[test]
fn unwrap_fires_on_bad_fixture_in_all_scoped_crates() {
    for path in [
        "crates/graph/src/io.rs",
        "crates/linalg/src/fixture.rs",
        "crates/datasets/src/fixture.rs",
    ] {
        let rules = fired_content(path, include_str!("fixtures/unwrap_bad.rs"));
        assert_eq!(rules, vec!["unwrap-expect"], "scope {path}");
    }
}

#[test]
fn unwrap_passes_good_fixture_and_unscoped_files() {
    let good = fired_content("crates/linalg/src/fixture.rs", include_str!("fixtures/unwrap_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    // graph is only scoped at io.rs; the rest of the crate may panic on
    // internal invariants.
    let other = fired_content("crates/graph/src/csr.rs", include_str!("fixtures/unwrap_bad.rs"));
    assert!(other.is_empty(), "{other:?}");
}

#[test]
fn forbid_unsafe_fires_on_bare_crate_root() {
    let d = check_source("crates/graph/src/lib.rs", include_str!("fixtures/forbid_bad.rs"));
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "forbid-unsafe");
    assert_eq!(d[0].line, 1);
}

#[test]
fn forbid_unsafe_passes_compliant_root_and_non_roots() {
    let good = fired("crates/graph/src/lib.rs", include_str!("fixtures/forbid_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    // Non-root files don't need the attribute.
    let non_root = fired("crates/graph/src/csr.rs", include_str!("fixtures/forbid_bad.rs"));
    assert!(non_root.is_empty(), "{non_root:?}");
}

#[test]
fn print_macro_fires_on_bad_fixture() {
    let rules = fired_content("crates/nn/src/fixture.rs", include_str!("fixtures/print_bad.rs"));
    assert_eq!(rules, vec!["print-macro"]);
}

#[test]
fn print_macro_passes_good_fixture_bench_and_binaries() {
    let good = fired_content("crates/nn/src/fixture.rs", include_str!("fixtures/print_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    let bench = fired_content("crates/bench/src/fixture.rs", include_str!("fixtures/print_bad.rs"));
    assert!(bench.is_empty(), "{bench:?}");
    let binary =
        fired_content("crates/lint/src/bin/tool.rs", include_str!("fixtures/print_bad.rs"));
    assert!(binary.is_empty(), "bin targets may print: {binary:?}");
    let main = fired_content("crates/lint/src/main.rs", include_str!("fixtures/print_bad.rs"));
    assert!(main.is_empty(), "main.rs may print: {main:?}");
}

#[test]
fn tape_in_loop_fires_on_bad_fixture() {
    let d = check_source(
        "crates/gnn/src/fixture.rs",
        include_str!("fixtures/tape_loop_bad.rs"),
    );
    let hits: Vec<_> = d.iter().filter(|d| d.rule == "tape-in-loop").collect();
    assert_eq!(hits.len(), 2, "for-loop and while-loop sites: {hits:?}");
}

#[test]
fn tape_in_loop_passes_good_fixture_and_binaries() {
    let good = fired_content(
        "crates/gnn/src/fixture.rs",
        include_str!("fixtures/tape_loop_good.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
    // Binaries (e.g. the bench's cold-start baseline) are exempt.
    let binary = fired_content(
        "crates/bench/src/bin/train_step.rs",
        include_str!("fixtures/tape_loop_bad.rs"),
    );
    assert!(binary.is_empty(), "bin targets may build throwaway tapes: {binary:?}");
}

#[test]
fn alloc_in_hot_loop_fires_on_bad_fixture() {
    let d = check_source(
        "crates/gnn/src/sampler.rs",
        include_str!("fixtures/alloc_loop_bad.rs"),
    );
    let hits: Vec<_> = d.iter().filter(|d| d.rule == "alloc-in-hot-loop").collect();
    assert_eq!(hits.len(), 2, "Vec::new and vec![…] sites: {hits:?}");
}

#[test]
fn alloc_in_hot_loop_passes_good_fixture_and_other_files() {
    let good = fired_content(
        "crates/gnn/src/sampler.rs",
        include_str!("fixtures/alloc_loop_good.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
    // Only the sampling hot-path files are in scope.
    let elsewhere = fired_content(
        "crates/gnn/src/trainer.rs",
        include_str!("fixtures/alloc_loop_bad.rs"),
    );
    assert!(elsewhere.is_empty(), "non-hot files may allocate in loops: {elsewhere:?}");
}

#[test]
fn pragma_reasons_survive_extra_rules_listed() {
    // One pragma can name several rules.
    let src = "#![forbid(unsafe_code)]\n\
               // splpg-lint: allow(hash-iter, wallclock) — fixture\n\
               use std::collections::HashMap; use std::time::Instant;\n";
    let d = check_source("crates/graph/src/lib.rs", src);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn workspace_scan_reports_zero_violations() {
    // The repo itself must stay clean — this is the same check
    // scripts/verify.sh runs, kept here so `cargo test` alone catches
    // regressions. CARGO_MANIFEST_DIR = crates/lint; the workspace root
    // is two levels up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("invariant: crates/lint sits two levels below the workspace root")
        .to_path_buf();
    let report = splpg_lint::check_workspace(&root).expect("scan");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "expected to scan the whole workspace");
}
