#!/usr/bin/env sh
# Opt-in sanitizer pass: Miri (UB detection) and ThreadSanitizer (data
# races). Both need a nightly toolchain; on a stable-only host this
# script skips cleanly (exit 0) so verify.sh stays green offline.
#
# Invoke directly, or through verify.sh with SPLPG_SANITIZE=1.
set -eu
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

if ! command -v rustup >/dev/null 2>&1; then
    echo "sanitize: SKIP (rustup not installed; nightly toolchain unavailable)"
    exit 0
fi

if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "sanitize: SKIP (no nightly toolchain installed)"
    exit 0
fi

ran_any=0

# --- Miri: interpret the deterministic core under the UB checker. ----
# Full-workspace Miri is far too slow; pin it to the crates whose unsafe
# and aliasing behaviour matters most (par owns the raw-pointer chunk
# dispatch, tensor owns the arena + SIMD-friendly kernels).
if rustup component list --toolchain nightly 2>/dev/null | grep -q 'miri.*(installed)'; then
    echo "== miri (splpg-par, splpg-tensor unit tests) =="
    # Isolation off: the pool reads SPLPG_NUM_THREADS and probes core
    # counts; neither affects determinism, which the tests assert.
    MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test -p splpg-par -p splpg-tensor --lib
    ran_any=1
else
    echo "sanitize: miri component not installed; skipping Miri"
fi

# --- ThreadSanitizer: race-check the thread pool under load. ---------
# TSan needs -Zbuild-std for an instrumented std; skip if the
# rust-src component is missing (offline hosts can't fetch it).
host_triple=$(rustc -vV | sed -n 's/^host: //p')
case "$host_triple" in
    x86_64-unknown-linux-gnu|aarch64-unknown-linux-gnu)
        if rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src (installed)'; then
            echo "== thread sanitizer (splpg-par unit tests) =="
            RUSTFLAGS="-Zsanitizer=thread" \
                cargo +nightly test -p splpg-par --lib \
                -Zbuild-std --target "$host_triple"
            ran_any=1
        else
            echo "sanitize: rust-src component not installed; skipping TSan"
        fi
        ;;
    *)
        echo "sanitize: TSan unsupported on $host_triple; skipping TSan"
        ;;
esac

if [ "$ran_any" = "1" ]; then
    echo "sanitize: OK"
else
    echo "sanitize: SKIP (no sanitizer toolchain available)"
fi
