#!/usr/bin/env sh
# Offline verification gate: build, test, lint. No network access needed.
set -eu
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "== splpg-lint (determinism & safety analyzer) =="
# --budget-ms turns "fast enough to run on every build" into a hard
# gate: the full workspace scan must finish inside 5 seconds.
cargo run -p splpg-lint --release -- check --timings --budget-ms 5000

if [ "${SPLPG_SANITIZE:-0}" = "1" ]; then
    echo "== sanitizers (Miri / ThreadSanitizer, nightly-only) =="
    sh scripts/sanitize.sh
fi

echo "== fault-injection e2e (drop=0.1 dup=0.05, crash, quorum p-1) =="
# The wire_chaos stdout is seed-determined only: identical across runs
# and thread counts, or the fault layer leaked wallclock into training.
chaos1=$(SPLPG_NUM_THREADS=1 cargo run -q -p splpg-examples --bin wire_chaos --release 2>/dev/null)
chaos4=$(SPLPG_NUM_THREADS=4 cargo run -q -p splpg-examples --bin wire_chaos --release 2>/dev/null)
if [ "$chaos1" != "$chaos4" ]; then
    echo "FAIL: wire_chaos metrics diverged between 1 and 4 threads" >&2
    printf '%s\n--- vs ---\n%s\n' "$chaos1" "$chaos4" >&2
    exit 1
fi
echo "$chaos1"

echo "== multi-process cluster smoke (real TCP sockets) =="
# Spawns worker child processes over loopback TCP and demands the
# outcome be bit-identical to the sequential reference (the binary
# exits nonzero otherwise). Bounded: ports come from the kernel
# (bind 127.0.0.1:0), rendezvous waits are attempt-counted, and the
# whole run is capped by `timeout` where available. Skips cleanly in
# sandboxes without loopback sockets — the binary prints SKIP.
if command -v timeout >/dev/null 2>&1; then
    timeout 300 cargo run -q -p splpg-examples --bin cluster_tcp --release
else
    cargo run -q -p splpg-examples --bin cluster_tcp --release
fi

echo "== train-step bench smoke (zero-realloc arena) =="
# Exits nonzero if any steady-state step allocates arena buffers.
SPLPG_BENCH_MS=5 cargo run -q -p splpg-bench --release --bin train_step

echo "== sparsify bench smoke (solver engine gate) =="
# Exits nonzero if steady-state solves allocate, PCG iterations exceed
# the unpreconditioned baseline, matvec work drops < 5x, or resistances
# drift > 1e-6 from the per-edge reference.
SPLPG_BENCH_MS=5 cargo run -q -p splpg-bench --release --bin sparsify_bench

echo "== wire compression ablation (codec gate) =="
# Exits nonzero unless on-wire bytes <= raw bytes in every codec mode,
# the uncompressed mode prices wire bytes identically to the raw ledger
# model (bit-compatible with pre-compression numbers), varint structure
# packing reaches >= 2x, int8 feature quantization reaches >= 3.5x, and
# every cluster run's communication report matches its sequential
# reference. SPLPG_BENCH_MS=5 keeps it to the in-process rows.
SPLPG_BENCH_MS=5 cargo run -q -p splpg-bench --release --bin wire_compress

echo "== shared-memory feature bus (local-vs-wire gate) =="
# Exits nonzero unless the bus run moves the baseline's entire feature
# volume off the wire (>=10x fewer feature wire bytes) bit-identically,
# a deliberately torn segment degrades to the wire path with a typed
# fault, and the ledger-carried bus bytes reconcile exactly with the
# CommTracker meters. Skips itself (exit 0, prints SKIP) on hosts
# without usable POSIX shared memory. SPLPG_BENCH_MS=5 keeps it to the
# in-process rows.
SPLPG_BENCH_MS=5 cargo run -q -p splpg-bench --release --bin shm_bus

if [ "${SPLPG_BENCH_ASSERT:-0}" = "1" ]; then
    echo "== kernel bench speedup assertion =="
    # Fails if multi-threaded matmul/sampling lose to scalar, or the
    # cooperative batch build stops deduplicating frontier expansions.
    # Skips itself (exit 0) on single-core hosts.
    SPLPG_BENCH_MS=5 cargo run -q -p splpg-bench --release --bin kernel_bench -- --assert-speedup
fi

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
