#!/usr/bin/env sh
# Offline verification gate: build, test, lint. No network access needed.
set -eu
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "== splpg-lint (determinism & safety analyzer) =="
cargo run -p splpg-lint --release -- check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
