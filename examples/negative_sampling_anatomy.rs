//! Negative-sampling anatomy: why local negative samples hurt.
//!
//! Reproduces the insight of Section III-B / Figure 5 numerically: under a
//! METIS-style partition, a worker restricted to its own partition can only
//! ever draw *local* negative pairs, while the true negative sample space
//! is dominated by *global* (cross-partition) pairs. RandomTMA avoids the
//! bias but destroys neighborhood structure instead.
//!
//! ```sh
//! cargo run -p splpg-examples --bin negative_sampling_anatomy --release
//! ```

use splpg_rng::SeedableRng;
use splpg::partition::{PartitionedGraph, RandomTma, SuperTma};
use splpg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = DatasetSpec::pubmed().generate(Scale::tiny(), 5)?;
    let g = data.train_graph();
    let n = g.num_nodes() as u64;
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(2);

    println!("dataset: {} ({} nodes, {} train edges)\n", data.name, n, g.num_edges());
    println!(
        "{:<12} {:>4} {:>12} {:>16} {:>18}",
        "partitioner", "p", "edge cut", "local edges %", "local neg space %"
    );

    for p in [4usize, 8, 16] {
        for (name, partition) in [
            ("METIS", MetisLike::default().partition(&g, p, &mut rng)?),
            ("RandomTMA", RandomTma.partition(&g, p, &mut rng)?),
            ("SuperTMA", SuperTma::default().partition(&g, p, &mut rng)?),
        ] {
            // Fraction of all node pairs that a single worker can reach
            // when restricted to its own partition (the "local" negative
            // sample space of Figure 5).
            let local_pairs: u64 = partition
                .part_sizes()
                .iter()
                .map(|&s| (s as u64) * (s as u64 - 1) / 2)
                .sum();
            let all_pairs = n * (n - 1) / 2;
            println!(
                "{:<12} {:>4} {:>12} {:>15.1}% {:>17.2}%",
                name,
                p,
                partition.edge_cut(&g),
                100.0 * partition.local_edge_fraction(&g),
                100.0 * local_pairs as f64 / all_pairs as f64,
            );
        }
    }

    // Positive-sample loss without halo retention.
    println!("\npositive samples visible to workers (p = 4, METIS):");
    let partition = MetisLike::default().partition(&g, 4, &mut rng)?;
    let cut = PartitionedGraph::build(&g, &partition, false);
    let halo = PartitionedGraph::build(&g, &partition, true);
    println!("  without halo: {} of {} edges", cut.total_edges(), g.num_edges());
    println!(
        "  with halo   : {} edge slots ({} cross-partition edges duplicated)",
        halo.total_edges(),
        partition.edge_cut(&g)
    );
    println!(
        "\nTakeaway: with p partitions the local negative space shrinks to\n\
         ~1/p of all pairs, so training never sees cross-partition negatives\n\
         — exactly the information loss SpLPG's shared sparsified subgraphs\n\
         repair."
    );
    Ok(())
}
