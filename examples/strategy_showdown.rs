//! Strategy showdown: the paper's core experiment in miniature.
//!
//! Trains one GraphSAGE model per distributed strategy on the same
//! dataset, printing accuracy and communication cost side by side —
//! demonstrating the accuracy/communication trade-off that motivates
//! SpLPG (Figures 3, 4, 8–11 of the paper).
//!
//! ```sh
//! cargo run -p splpg-examples --bin strategy_showdown --release
//! ```

use splpg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = DatasetSpec::citeseer().generate(Scale::small(), 11)?;
    println!(
        "dataset: {} ({} nodes, {} edges)\n",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges()
    );

    let strategies = [
        Strategy::Centralized,
        Strategy::PsgdPa,
        Strategy::RandomTma,
        Strategy::SuperTma,
        Strategy::Llcg,
        Strategy::PsgdPaPlus,
        Strategy::SpLpg,
        Strategy::SpLpgPlus,
    ];

    println!("{:<14} {:>10} {:>16} {:>14}", "strategy", "Hits@50", "comm MB/epoch", "sparsify ms");
    for strategy in strategies {
        let out = SpLpg::builder()
            .workers(if strategy == Strategy::Centralized { 1 } else { 4 })
            .strategy(strategy)
            .epochs(8)
            .hidden(32)
            .layers(2)
            .fanouts(vec![Some(10), Some(5)])
            .hits_k(50)
            .build()
            .run(ModelKind::GraphSage, &data)?;
        println!(
            "{:<14} {:>10.3} {:>16.3} {:>14.1}",
            strategy.name(),
            out.test_hits,
            out.comm.mean_epoch_bytes() as f64 / 1e6,
            out.sparsify_time.as_secs_f64() * 1e3,
        );
    }
    println!(
        "\nExpected shape (paper): local-only strategies lose accuracy; the\n\
         '+' variants recover it at high communication; SpLPG recovers it\n\
         at a fraction of the '+' cost."
    );
    Ok(())
}
