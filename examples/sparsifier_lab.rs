//! Sparsifier lab: explore the effective-resistance sparsifier on its own.
//!
//! Shows (1) that the degree-based scores of Theorem 2 bracket the exact
//! effective resistances, (2) the spectral quality of the sparsified graph
//! (Theorem 1's quadratic form), and (3) the edge-retention curve across
//! sparsification levels alpha.
//!
//! ```sh
//! cargo run -p splpg-examples --bin sparsifier_lab --release
//! ```

use splpg_rng::{Rng, SeedableRng};
use splpg::linalg::{
    effective_resistance, lambda2_normalized, quadratic_form, CgOptions, PowerIterOptions,
};
use splpg::prelude::*;
use splpg::sparsify::DegreeSparsifier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(1);

    // A small community graph where exact resistances are computable.
    let data = DatasetSpec::cora().generate(Scale::new(0.03, 8), 3)?;
    let g = &data.graph;
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // 1. Theorem 2 bracket on a sample of edges.
    let gamma = lambda2_normalized(g, PowerIterOptions::default());
    match gamma {
        Ok(gamma) => {
            println!("\nTheorem 2: gamma = lambda2(L_sym) = {gamma:.4}");
            println!("{:>8} {:>8} {:>12} {:>12} {:>12}", "u", "v", "approx", "exact r", "upper");
            for e in g.edges().iter().step_by((g.num_edges() / 8).max(1)).take(8) {
                let base =
                    1.0 / g.degree(e.src) as f64 + 1.0 / g.degree(e.dst) as f64;
                let r = effective_resistance(g, e.src, e.dst, CgOptions::default())?;
                println!(
                    "{:>8} {:>8} {:>12.4} {:>12.4} {:>12.4}",
                    e.src,
                    e.dst,
                    base,
                    r,
                    base / gamma
                );
            }
        }
        Err(_) => println!("\n(graph disconnected; skipping exact-resistance bracket)"),
    }

    // 2. Spectral preservation: compare x^T L x before/after sparsifying.
    println!("\nTheorem 1 check (alpha = 0.5, 5 random vectors):");
    let sparse = DegreeSparsifier::new(SparsifyConfig::with_alpha(0.5)).sparsify(g, &mut rng)?;
    for i in 0..5 {
        let x: Vec<f64> = (0..g.num_nodes()).map(|_| rng.gen::<f64>() - 0.5).collect();
        let qf = quadratic_form(g, &x)?;
        let qs = quadratic_form(&sparse, &x)?;
        println!("  vector {i}: x'Lx = {qf:9.2}  x'L~x = {qs:9.2}  ratio = {:.3}", qs / qf);
    }

    // 3. Edge retention across the paper's alpha grid.
    println!("\nedge retention (paper: alpha = 0.15 keeps 10-15% of edges):");
    println!("{:>8} {:>12} {:>12}", "alpha", "edges kept", "fraction");
    for alpha in [0.05, 0.10, 0.15, 0.20, 0.50] {
        let s = DegreeSparsifier::new(SparsifyConfig::with_alpha(alpha)).sparsify(g, &mut rng)?;
        println!(
            "{:>8.2} {:>12} {:>12.3}",
            alpha,
            s.num_edges(),
            s.num_edges() as f64 / g.num_edges() as f64
        );
    }
    Ok(())
}
