//! Quickstart: train SpLPG on a synthetic Cora stand-in and compare it to
//! centralized training.
//!
//! ```sh
//! cargo run -p splpg-examples --bin quickstart --release
//! ```

use splpg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a synthetic dataset matched to Cora's statistics at 20%
    //    scale (see splpg-datasets for the full Table I registry).
    let data = DatasetSpec::cora().generate(Scale::small(), 42)?;
    println!(
        "dataset: {} ({} nodes, {} edges, {} features)",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges(),
        data.features.dim()
    );

    // 2. Train with SpLPG across 4 simulated workers.
    let splpg = SpLpg::builder()
        .workers(4)
        .strategy(Strategy::SpLpg)
        .sparsification_alpha(0.15)
        .epochs(10)
        .hidden(32)
        .layers(2)
        .fanouts(vec![Some(10), Some(5)])
        .hits_k(50)
        .build();
    let out = splpg.run(ModelKind::GraphSage, &data)?;
    println!("\nSpLPG (p = 4):");
    println!("  test Hits@50       = {:.3}", out.test_hits);
    println!("  comm per epoch     = {:.3} MB", out.comm.mean_epoch_bytes() as f64 / 1e6);
    println!("  sparsification     = {:?}", out.sparsify_time);

    // 3. Centralized reference on the same data.
    let central = SpLpg::builder()
        .workers(1)
        .strategy(Strategy::Centralized)
        .epochs(10)
        .hidden(32)
        .layers(2)
        .fanouts(vec![Some(10), Some(5)])
        .hits_k(50)
        .build()
        .run(ModelKind::GraphSage, &data)?;
    println!("\nCentralized:");
    println!("  test Hits@50       = {:.3}", central.test_hits);
    println!("  comm per epoch     = 0 (single machine)");

    println!(
        "\nSpLPG recovered {:.1}% of centralized accuracy.",
        100.0 * out.test_hits / central.test_hits.max(1e-9)
    );
    Ok(())
}
