//! Cluster over real sockets: multi-process training on loopback TCP.
//!
//! Re-executes this binary once per worker (role handoff through
//! environment variables, rendezvous through an ephemeral port file),
//! trains SpLPG across the resulting processes, and checks the outcome
//! bit-for-bit against the sequential in-process reference — the same
//! guarantee the in-memory channel cluster gives, now with every frame
//! crossing a real socket. Prints `SKIP` and exits cleanly when the
//! sandbox offers no loopback sockets.
//!
//! ```sh
//! cargo run -p splpg-examples --bin cluster_tcp --release
//! ```

use splpg::prelude::*;

const SEED: u64 = 29;
const WORKERS: usize = 2;

fn trainer(workers: usize) -> DistTrainer {
    let dist = DistConfig {
        num_workers: workers,
        strategy: Strategy::SpLpg,
        sync: SyncMethod::ModelAveraging,
        ..Default::default()
    };
    let train = TrainConfig {
        epochs: 2,
        hidden: 8,
        layers: 2,
        fanouts: vec![Some(5), Some(5)],
        hits_k: 10,
        batch_size: 128,
        seed: SEED,
        ..Default::default()
    };
    DistTrainer::new(dist, train)
}

fn dataset() -> Result<Dataset, String> {
    DatasetSpec::cora().generate(Scale::new(0.05, 16), 5).map_err(|e| e.to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Spawned worker child? Serve the whole worker lifetime, then exit
    // without launching anything (a launching worker would fork-bomb).
    let served = tcp_worker_entry(|workers| {
        let data = dataset().map_err(splpg::dist::DistError::Process)?;
        Ok((trainer(workers), ModelKind::GraphSage, data))
    })?;
    if served {
        return Ok(());
    }

    if std::net::TcpListener::bind(("127.0.0.1", 0)).is_err() {
        println!("SKIP: loopback sockets unavailable in this environment");
        return Ok(());
    }

    let data = dataset()?;
    eprintln!(
        "dataset: {} ({} nodes, {} edges); {WORKERS} worker processes over loopback TCP",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges()
    );

    let t = trainer(WORKERS);
    let reference = t.run_reference(ModelKind::GraphSage, &data)?;
    let out = t.run_multiprocess(ModelKind::GraphSage, &data, &[])?;

    // Deterministic, diffable summary: bit-exact floats via hex bits.
    for e in &out.epochs {
        println!(
            "epoch {:>2}: loss {:.6} [{:08x}] valid_hits {:?}",
            e.epoch,
            e.mean_loss,
            e.mean_loss.to_bits(),
            e.valid_hits
        );
    }
    println!(
        "final: hits {:.4} [{:016x}] comm_bytes {} data_bytes {}",
        out.test_hits,
        out.test_hits.to_bits(),
        out.comm.total_bytes(),
        out.net.data_bytes
    );

    let identical = out.test_hits.to_bits() == reference.test_hits.to_bits()
        && out.epochs.len() == reference.epochs.len()
        && out
            .epochs
            .iter()
            .zip(&reference.epochs)
            .all(|(a, b)| a.mean_loss.to_bits() == b.mean_loss.to_bits());
    println!("bit-identical to sequential reference: {identical}");
    println!(
        "socket data bytes reconcile with comm meters: {}",
        out.net.data_bytes == out.comm.total_bytes()
    );
    if !identical || out.net.data_bytes != out.comm.total_bytes() {
        return Err("multi-process run diverged from the in-process reference".into());
    }

    // Timing-dependent wire counters — stderr only.
    eprintln!("wire: {} frames, {} bytes on the socket", out.net.messages, out.net.bytes);
    eprintln!(
        "\nTakeaway: the transport is invisible to training — the same frames\n\
         over real sockets produce the same bits as threads and channels."
    );
    Ok(())
}
