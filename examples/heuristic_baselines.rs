//! Classical heuristics vs a trained GNN.
//!
//! The paper's Section II-A surveys pre-GNN link-prediction heuristics
//! (common neighbors, Jaccard, preferential attachment). This example
//! scores the test split with each heuristic and with a trained GraphSAGE
//! model, reporting Hits@K, AUC and MRR side by side — and doubling as a
//! sanity check that the synthetic datasets are neither trivial nor
//! hopeless.
//!
//! ```sh
//! cargo run -p splpg-examples --bin heuristic_baselines --release
//! ```

use splpg::gnn::heuristics::Heuristic;
use splpg::gnn::metrics;
use splpg::gnn::trainer::train_centralized;
use splpg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = DatasetSpec::cora().generate(Scale::small(), 31)?;
    let train_graph = data.train_graph();
    let k = ((data.split.test_neg.len() as f64 * 0.036) as usize).max(10);
    println!(
        "dataset: {} ({} nodes, {} train edges), Hits@{k}\n",
        data.name,
        data.graph.num_nodes(),
        train_graph.num_edges()
    );
    println!("{:<26} {:>10} {:>8} {:>8}", "method", &format!("Hits@{k}"), "AUC", "MRR");

    for h in Heuristic::ALL {
        let pos = h.score_edges(&train_graph, &data.split.test);
        let neg = h.score_edges(&train_graph, &data.split.test_neg);
        println!(
            "{:<26} {:>10.3} {:>8.3} {:>8.3}",
            h.name(),
            metrics::hits_at_k(&pos, &neg, k)?,
            metrics::auc(&pos, &neg)?,
            metrics::mrr(&pos, &neg)?,
        );
    }

    // GraphSAGE, centralized, modest budget.
    let config = TrainConfig {
        layers: 2,
        hidden: 32,
        epochs: 40,
        fanouts: vec![Some(10), Some(5)],
        hits_k: k,
        ..TrainConfig::default()
    };
    let trained =
        train_centralized(ModelKind::GraphSage, &data.graph, &data.features, &data.split, &config)?;
    println!("{:<26} {:>10.3} {:>8} {:>8}", "GraphSAGE (40 epochs)", trained.test_hits, "-", "-");
    println!(
        "\nExpected: neighborhood heuristics do well on homophilous graphs;\n\
         the GNN should at least match the best heuristic by combining\n\
         structure with features."
    );
    Ok(())
}
