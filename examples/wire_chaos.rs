//! Wire chaos: training through a deterministically faulty network.
//!
//! Runs the ISSUE's fault-injection scenario end-to-end: three workers,
//! 10% frame drops, 5% duplicates, worker 2 crashing at epoch 1, and a
//! quorum of `p - 1 = 2` so the run survives the crash. Everything that
//! depends only on the seed — loss curve, accuracy, communication meters,
//! crash detection — is printed to **stdout**, which must therefore be
//! byte-identical across runs and thread counts (`scripts/verify.sh`
//! diffs it at `SPLPG_NUM_THREADS=1` vs `4`). Timing-dependent wire
//! counters (retries, observed drops) go to stderr.
//!
//! ```sh
//! cargo run -p splpg-examples --bin wire_chaos --release
//! ```

use splpg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = DatasetSpec::citeseer().generate(Scale::new(0.05, 16), 3)?;
    eprintln!(
        "dataset: {} ({} nodes, {} edges); 3 workers, quorum 2, \
         drop=0.10 dup=0.05, worker 2 crashes at epoch 1",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges()
    );

    let out = SpLpg::builder()
        .workers(3)
        .strategy(Strategy::SpLpg)
        .sync(SyncMethod::ModelAveraging)
        .epochs(3)
        .hidden(8)
        .layers(2)
        .fanouts(vec![Some(5), Some(5)])
        .hits_k(10)
        .seed(29)
        .quorum(2)
        .retry(RetryPolicy { timeout_ms: 200, max_retries: 4, backoff: 2 })
        .wire_faults(FaultPlan {
            drop: 0.1,
            duplicate: 0.05,
            seed: 33,
            crashes: vec![(2, 1)],
            ..FaultPlan::default()
        })
        .build()
        .run(ModelKind::GraphSage, &data)?;

    // Deterministic, diffable summary: bit-exact floats via hex bits.
    for e in &out.epochs {
        println!(
            "epoch {:>2}: loss {:.6} [{:08x}] valid_hits {:?}",
            e.epoch,
            e.mean_loss,
            e.mean_loss.to_bits(),
            e.valid_hits
        );
    }
    println!(
        "final: hits {:.4} [{:016x}] comm_bytes {} data_bytes {} dead {:?}",
        out.test_hits,
        out.test_hits.to_bits(),
        out.comm.total_bytes(),
        out.net.data_bytes,
        out.net.dead_workers
    );

    // Timing-dependent observability (retry/drop counts vary with how many
    // retransmissions the scheduler needed) — stderr only.
    eprintln!(
        "wire: {} msgs, {} bytes, {} dropped, {} duplicated, {} retries",
        out.net.messages, out.net.bytes, out.net.dropped, out.net.duplicated, out.net.retries
    );
    eprintln!(
        "\nTakeaway: the fault layer is a pure function of (lane, kind, message\n\
         id), so a given seed injects the same chaos every run — the training\n\
         outcome above is bit-identical across runs and thread counts."
    );
    Ok(())
}
