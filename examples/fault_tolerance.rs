//! Fault tolerance: SpLPG training under worker preemption.
//!
//! The paper assumes reliable workers; real clusters don't have them. This
//! example injects per-epoch worker crashes (a crashed worker skips the
//! epoch and is excluded from model averaging, rejoining with the fresh
//! global model) and shows accuracy degrading gracefully with the failure
//! rate.
//!
//! ```sh
//! cargo run -p splpg-examples --bin fault_tolerance --release
//! ```

use splpg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = DatasetSpec::cora().generate(Scale::small(), 23)?;
    println!(
        "dataset: {} ({} nodes, {} edges), 4 workers, SpLPG\n",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges()
    );
    println!("{:>14} {:>12} {:>16}", "failure rate", "Hits@K", "worker-epochs lost");
    for rate in [0.0, 0.1, 0.25, 0.5] {
        let mut builder = SpLpg::builder();
        builder
            .workers(4)
            .strategy(Strategy::SpLpg)
            .epochs(40)
            .hidden(32)
            .layers(2)
            .fanouts(vec![Some(10), Some(5)])
            .hits_k(40)
            .eval_every(4);
        if rate > 0.0 {
            builder.faults(FaultConfig { failure_probability: rate, seed: 99 });
        }
        let out = builder.build().run(ModelKind::GraphSage, &data)?;
        println!("{:>13}% {:>12.3} {:>16}", rate * 100.0, out.test_hits, out.failures.len());
    }
    println!(
        "\nTakeaway: synchronous model averaging absorbs worker loss — the\n\
         surviving replicas keep the global model moving, so accuracy decays\n\
         smoothly instead of the run failing."
    );
    Ok(())
}
