//! Runnable examples for the SpLPG reproduction (binaries only).
//!
//! * `quickstart` — train SpLPG vs centralized on a Cora stand-in;
//! * `strategy_showdown` — every strategy's accuracy/communication;
//! * `sparsifier_lab` — the effective-resistance sparsifier up close;
//! * `negative_sampling_anatomy` — why local negative samples hurt;
//! * `heuristic_baselines` — classical heuristics vs a trained GNN;
//! * `fault_tolerance` — SpLPG under worker preemption.
