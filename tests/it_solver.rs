//! Property-based invariants of the effective-resistance solver engine
//! (`splpg_linalg::SolverEngine`), checked with the in-tree
//! [`splpg_tests::prop`] harness:
//!
//! 1. the Jacobi-preconditioned multi-RHS engine agrees with the
//!    unpreconditioned single-pair reference on random connected graphs;
//! 2. engine resistances are *bitwise* identical at 1 and 4 threads,
//!    even when the parallel matvec path is forced on — the contiguous
//!    range partitioning never reorders floating-point accumulation;
//! 3. the per-node-reuse `ExactSparsifier` path satisfies two spectral
//!    identities: Foster's theorem (`sum_e R_e = n - 1` on connected
//!    unit-weight graphs, a trace identity of `L^+ L`) and the
//!    Theorem 1/2 bracket `d_uv / 2 <= R_uv <= d_uv / gamma` with
//!    `gamma = lambda2_normalized` (the paper's spectral-gap bound).

use splpg::graph::{Graph, GraphBuilder, NodeId};
use splpg::linalg::{
    effective_resistance, lambda2_normalized, CgOptions, EngineOptions, PowerIterOptions,
    SolverEngine,
};
use splpg::sparsify::{DegreeSparsifier, ExactSparsifier};
use splpg_rng::rngs::StdRng;
use splpg_rng::{Rng, RngCore, SeedableRng};
use splpg_tests::prop::{check, shrink_usize, Config};

/// A connected random graph: a Hamiltonian ring (connectivity) plus
/// `n` extra random chords, deterministic in `seed`. Unit weights;
/// duplicate chords are deduplicated by the builder.
fn ring_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as NodeId, ((v + 1) % n) as NodeId).unwrap();
    }
    for _ in 0..n {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_edge(u, v).unwrap();
        }
    }
    b.build()
}

/// Shrink a `(n, seed)` case: smaller graphs first, then simpler seeds.
fn shrink_graph_case(&(n, seed): &(usize, u64)) -> Vec<(usize, u64)> {
    let mut out: Vec<(usize, u64)> =
        shrink_usize(n, 4).into_iter().map(|m| (m, seed)).collect();
    if seed > 0 {
        out.push((n, seed / 2));
    }
    out
}

fn edge_pairs(g: &Graph) -> Vec<(NodeId, NodeId)> {
    g.edges().iter().map(|e| (e.src, e.dst)).collect()
}

#[test]
fn engine_matches_unpreconditioned_reference_on_random_graphs() {
    check(
        Config::default().with_cases(32),
        |rng| (rng.gen_range(4..32usize), rng.next_u64()),
        shrink_graph_case,
        |&(n, seed)| {
            let g = ring_graph(n, seed);
            let pairs = edge_pairs(&g);
            let mut engine = SolverEngine::new(&g, ExactSparsifier::engine_options());
            let rs = engine
                .edge_resistances(&pairs)
                .map_err(|e| format!("engine failed: {e}"))?;
            for (&r, &(u, v)) in rs.iter().zip(&pairs) {
                let reference = effective_resistance(&g, u, v, CgOptions::default())
                    .map_err(|e| format!("reference failed on ({u},{v}): {e}"))?;
                let rel = (r - reference).abs() / reference.abs().max(f64::MIN_POSITIVE);
                if rel > 1e-6 {
                    return Err(format!(
                        "edge ({u},{v}): engine {r} vs reference {reference} \
                         (rel err {rel:.3e})"
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn engine_resistances_bitwise_invariant_across_thread_counts() {
    // Force the parallel matvec on (threshold 0) so small graphs still
    // exercise the pool dispatch; 1 thread vs 4 must agree bit-for-bit.
    let forced = EngineOptions { par_flop_threshold: 0, ..ExactSparsifier::engine_options() };
    check(
        Config::default().with_cases(16),
        |rng| (rng.gen_range(6..40usize), rng.next_u64()),
        shrink_graph_case,
        |&(n, seed)| {
            let g = ring_graph(n, seed);
            let pairs = edge_pairs(&g);
            let mut bits: Vec<Vec<u64>> = Vec::new();
            for threads in [1usize, 4] {
                splpg_par::set_num_threads(threads);
                let mut engine = SolverEngine::new(&g, forced);
                let rs = engine
                    .edge_resistances(&pairs)
                    .map_err(|e| format!("engine failed at {threads} threads: {e}"))?;
                bits.push(rs.iter().map(|r| r.to_bits()).collect());
            }
            splpg_par::set_num_threads(0);
            if bits[0] != bits[1] {
                return Err("resistances diverged between 1 and 4 threads".to_string());
            }
            Ok(())
        },
    );
}

#[test]
fn exact_path_satisfies_foster_sum_and_spectral_bracket() {
    check(
        Config::default().with_cases(24),
        |rng| (rng.gen_range(4..28usize), rng.next_u64()),
        shrink_graph_case,
        |&(n, seed)| {
            let g = ring_graph(n, seed);
            let rs = ExactSparsifier::resistances(&g)
                .map_err(|e| format!("resistances failed: {e}"))?;
            // Foster's theorem: sum of unit-weight edge resistances is
            // exactly n - 1 on a connected graph (tr(L^+ L) = rank L).
            let total: f64 = rs.iter().sum();
            let expect = (n - 1) as f64;
            if (total - expect).abs() > 1e-6 * expect.max(1.0) {
                return Err(format!("Foster sum {total} != n - 1 = {expect}"));
            }
            // Spectral bracket through lambda2_normalized (Theorems 1/2):
            // d_uv / 2 <= R_uv <= d_uv / gamma.
            let gamma = lambda2_normalized(&g, PowerIterOptions::default())
                .map_err(|e| format!("lambda2 failed: {e}"))?;
            let base = DegreeSparsifier::scores(&g);
            for ((&r, &d), e) in rs.iter().zip(&base).zip(g.edges()) {
                if r < d / 2.0 - 1e-9 || r > d / gamma + 1e-9 {
                    return Err(format!(
                        "edge ({},{}): R = {r} outside [{}, {}] (gamma = {gamma:.4})",
                        e.src,
                        e.dst,
                        d / 2.0,
                        d / gamma
                    ));
                }
            }
            Ok(())
        },
    );
}
