//! Property-based invariants over the pipeline's structural guarantees,
//! checked with the in-tree [`splpg_tests::prop`] harness:
//!
//! 1. partitioning covers every node exactly once;
//! 2. SpLPG's halo retention keeps the *full* neighbor list of every
//!    core node (Algorithm 1's full-neighbor guarantee);
//! 3. sparsifier output never exceeds the `alpha * |E|` sample budget
//!    and keeps all nodes;
//! 4. the wire codec round-trips every message type bit-for-bit.

use std::sync::Arc;

use splpg::dist::{ClusterSetup, Strategy};
use splpg::gnn::GraphAccess;
use splpg::graph::{FeatureMatrix, Graph, GraphBuilder, NodeId};
use splpg::partition::{MetisLike, Partitioner};
use splpg::sparsify::{DegreeSparsifier, Sparsifier, SparsifyConfig};
use splpg_net::{FetchLedger, Message, MsgId, Request, Response};
use splpg_rng::rngs::StdRng;
use splpg_rng::{Rng, RngCore, SeedableRng};
use splpg_tests::prop::{check, shrink_usize, Config};

/// A connected random graph: a Hamiltonian ring (connectivity) plus
/// `n` extra random chords, deterministic in `seed`.
fn ring_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as NodeId, ((v + 1) % n) as NodeId).unwrap();
    }
    for _ in 0..n {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_edge(u, v).unwrap();
        }
    }
    b.build()
}

/// Shrink a `(n, seed)` graph case: smaller node counts first, then
/// alternative seeds near zero (simpler chord patterns).
fn shrink_graph_case(&(n, seed): &(usize, u64)) -> Vec<(usize, u64)> {
    let mut out: Vec<(usize, u64)> =
        shrink_usize(n, 4).into_iter().map(|m| (m, seed)).collect();
    if seed > 0 {
        out.push((n, seed / 2));
    }
    out
}

#[test]
fn partition_covers_every_node_exactly_once() {
    check(
        Config::default(),
        |rng| (rng.gen_range(4..60usize), rng.next_u64()),
        shrink_graph_case,
        |&(n, seed)| {
            let graph = ring_graph(n, seed);
            let parts = 2 + (seed % 3) as usize;
            let mut rng = StdRng::seed_from_u64(seed);
            let partition = MetisLike::default()
                .partition(&graph, parts, &mut rng)
                .map_err(|e| format!("partitioner failed: {e}"))?;
            if partition.assignments().len() != n {
                return Err(format!(
                    "{} assignments for {n} nodes",
                    partition.assignments().len()
                ));
            }
            let mut owners = vec![0usize; n];
            for part in 0..parts {
                for v in partition.part_nodes(part as u32) {
                    owners[v as usize] += 1;
                    if partition.part_of(v) != part as u32 {
                        return Err(format!(
                            "node {v} listed in part {part} but assigned to {}",
                            partition.part_of(v)
                        ));
                    }
                }
            }
            match owners.iter().position(|&c| c != 1) {
                None => Ok(()),
                Some(v) => Err(format!("node {v} owned {} times", owners[v])),
            }
        },
    );
}

#[test]
fn splpg_halo_keeps_full_neighbor_lists_of_core_nodes() {
    check(
        Config::default().with_cases(24),
        |rng| (rng.gen_range(6..40usize), rng.next_u64()),
        shrink_graph_case,
        |&(n, seed)| {
            let graph = Arc::new(ring_graph(n, seed));
            let features = Arc::new(FeatureMatrix::zeros(n, 4));
            let workers = 2 + (seed % 2) as usize;
            let mut setup = ClusterSetup::build(
                &graph,
                &features,
                Strategy::SpLpg.spec(),
                workers,
                0.3,
                seed,
            )
            .map_err(|e| format!("setup failed: {e}"))?;
            for w in &mut setup.workers {
                let wid = w.worker_id as u32;
                for v in setup.partition.part_nodes(wid) {
                    let mut expected: Vec<NodeId> = graph.neighbors(v).to_vec();
                    expected.sort_unstable();
                    expected.dedup();
                    let mut got: Vec<NodeId> =
                        w.view.neighbors(v).into_iter().map(|(u, _)| u).collect();
                    got.sort_unstable();
                    got.dedup();
                    if got != expected {
                        return Err(format!(
                            "worker {wid} core node {v}: halo view has neighbors \
                             {got:?}, full graph has {expected:?}"
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn sparsifier_respects_alpha_budget_and_keeps_all_nodes() {
    check(
        Config::default(),
        |rng| (rng.gen_range(10..80usize), rng.next_u64()),
        shrink_graph_case,
        |&(n, seed)| {
            let graph = ring_graph(n, seed);
            let alpha = 0.2 + 0.6 * (seed % 7) as f64 / 7.0;
            let config = SparsifyConfig::with_alpha(alpha);
            let budget = config
                .resolve_samples(graph.num_edges())
                .map_err(|e| format!("budget failed: {e}"))?;
            let mut rng = StdRng::seed_from_u64(seed);
            let sparse = DegreeSparsifier::new(config)
                .sparsify(&graph, &mut rng)
                .map_err(|e| format!("sparsify failed: {e}"))?;
            if sparse.num_nodes() != graph.num_nodes() {
                return Err(format!(
                    "node count changed: {} -> {}",
                    graph.num_nodes(),
                    sparse.num_nodes()
                ));
            }
            if sparse.num_edges() > budget {
                return Err(format!(
                    "{} sampled edges exceed the alpha={alpha:.2} budget of \
                     {budget} (|E| = {})",
                    sparse.num_edges(),
                    graph.num_edges()
                ));
            }
            Ok(())
        },
    );
}

/// Random but reproducible instances of every message variant.
fn arbitrary_messages(seed: u64, payload_len: usize) -> Vec<Message> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut id = || MsgId {
        worker: rng.gen_range(0..16u32),
        epoch: rng.next_u64() % 1000,
        round: rng.next_u64() % 1000,
        attempt: rng.gen_range(0..8u32),
    };
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut floats = |len: usize| -> Vec<f32> {
        (0..len).map(|_| rng2.gen_range(-2.0f32..2.0)).collect()
    };
    let ledger = FetchLedger {
        structure_edges: seed % 911,
        structure_nodes: seed % 677,
        feature_elems: seed % 4096,
        structure_wire_bytes: seed % 8192,
        feature_wire_bytes: seed % 16384,
        feature_bus_elems: seed % 2048,
    };
    vec![
        Message::Request(Request::Epoch { id: id(), params: floats(payload_len) }),
        Message::Request(Request::Round { id: id(), params: floats(payload_len) }),
        Message::Request(Request::Stop { id: id() }),
        Message::Response(Response::Epoch {
            id: id(),
            params: floats(payload_len),
            loss_sum: seed as f64 * 0.125,
            batches: seed % 97,
            ledger,
        }),
        Message::Response(Response::Round {
            id: id(),
            active: seed.is_multiple_of(2),
            loss: seed as f32 * 0.5,
            grads: floats(payload_len),
            ledger,
        }),
        Message::Response(Response::Unavailable { id: id() }),
        Message::Response(Response::Failed {
            id: id(),
            error: format!("synthetic failure {seed}"),
        }),
    ]
}

#[test]
fn wire_codec_roundtrips_every_message_type() {
    check(
        Config::default().with_cases(128),
        |rng| (rng.gen_range(0..64usize), rng.next_u64()),
        |&(len, seed)| {
            let mut out: Vec<(usize, u64)> =
                shrink_usize(len, 0).into_iter().map(|l| (l, seed)).collect();
            if seed > 0 {
                out.push((len, seed / 2));
            }
            out
        },
        |&(len, seed)| {
            for msg in arbitrary_messages(seed, len) {
                let frame = msg.encode();
                let back = Message::decode(&frame)
                    .map_err(|e| format!("decode failed for {msg:?}: {e}"))?;
                if back != msg {
                    return Err(format!("round-trip changed {msg:?} into {back:?}"));
                }
            }
            Ok(())
        },
    );
}
