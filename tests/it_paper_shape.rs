//! Shape tests: the paper's qualitative findings must hold on the
//! synthetic stand-ins. These are the repository's reproduction acceptance
//! tests (see EXPERIMENTS.md).
//!
//! All strategies are trained once on a shared Citeseer stand-in (the
//! computation is cached in a `OnceLock` so the individual assertions can
//! run as separate tests without repeating ~2 minutes of training).

use std::collections::HashMap;
use std::sync::OnceLock;

use splpg::prelude::*;

const EPOCHS: usize = 100;
const HITS_K: usize = 30;

struct Shape {
    hits: HashMap<Strategy, f64>,
    comm: HashMap<Strategy, u64>,
}

fn shape() -> &'static Shape {
    static SHAPE: OnceLock<Shape> = OnceLock::new();
    SHAPE.get_or_init(|| {
        let data = DatasetSpec::citeseer()
            .generate(Scale::new(0.3, 32), 11)
            .expect("generate");
        let mut hits = HashMap::new();
        let mut comm = HashMap::new();
        for strategy in [
            Strategy::Centralized,
            Strategy::PsgdPa,
            Strategy::RandomTma,
            Strategy::SpLpgMinusMinus,
            Strategy::SpLpgMinus,
            Strategy::SpLpg,
            Strategy::SpLpgPlus,
        ] {
            let out = SpLpg::builder()
                .workers(if strategy == Strategy::Centralized { 1 } else { 4 })
                .strategy(strategy)
                .epochs(EPOCHS)
                .hidden(32)
                .layers(2)
                .fanouts(vec![Some(10), Some(5)])
                .hits_k(HITS_K)
                .eval_every(4)
                .build()
                .run(ModelKind::GraphSage, &data)
                .expect("run");
            hits.insert(strategy, out.test_hits);
            comm.insert(strategy, out.comm.mean_epoch_bytes());
        }
        Shape { hits, comm }
    })
}

#[test]
fn figure3_shape_vanilla_distributed_underperforms() {
    let s = shape();
    let central = s.hits[&Strategy::Centralized];
    for strategy in [Strategy::PsgdPa, Strategy::RandomTma] {
        assert!(
            central > s.hits[&strategy] + 0.05,
            "{strategy} ({:.3}) should trail Centralized ({central:.3}) clearly",
            s.hits[&strategy]
        );
    }
}

#[test]
fn figure4_shape_complete_sharing_recovers_accuracy_at_high_cost() {
    let s = shape();
    let central = s.hits[&Strategy::Centralized];
    let plus = s.hits[&Strategy::SpLpgPlus];
    assert!(
        plus > central - 0.08,
        "complete sharing ({plus:.3}) should approach Centralized ({central:.3})"
    );
    assert!(s.comm[&Strategy::SpLpgPlus] > 0);
}

#[test]
fn figure9_shape_sparsification_saves_majority_of_comm() {
    let s = shape();
    let saving = 1.0
        - s.comm[&Strategy::SpLpg] as f64 / s.comm[&Strategy::SpLpgPlus].max(1) as f64;
    assert!(
        (0.4..1.0).contains(&saving),
        "sparsification should save a large fraction of SpLPG+'s transfer, got {:.0}%",
        100.0 * saving
    );
}

#[test]
fn figure10_shape_splpg_beats_vanilla_baselines() {
    let s = shape();
    let splpg = s.hits[&Strategy::SpLpg];
    for strategy in [Strategy::PsgdPa, Strategy::RandomTma] {
        assert!(
            splpg > s.hits[&strategy],
            "SpLPG ({splpg:.3}) must beat {strategy} ({:.3})",
            s.hits[&strategy]
        );
    }
}

#[test]
fn figure12_shape_ablation_ladder_is_monotone() {
    let s = shape();
    let mm = s.hits[&Strategy::SpLpgMinusMinus];
    let splpg = s.hits[&Strategy::SpLpg];
    let plus = s.hits[&Strategy::SpLpgPlus];
    assert!(
        splpg > mm + 0.03,
        "SpLPG ({splpg:.3}) must clearly beat SpLPG-- ({mm:.3})"
    );
    assert!(
        plus > mm + 0.03,
        "SpLPG+ ({plus:.3}) must clearly beat SpLPG-- ({mm:.3})"
    );
}

#[test]
fn splpg_recovers_most_of_centralized_accuracy() {
    let s = shape();
    let ratio = s.hits[&Strategy::SpLpg] / s.hits[&Strategy::Centralized].max(1e-9);
    assert!(
        ratio > 0.75,
        "SpLPG should recover most of centralized accuracy, got {:.0}%",
        100.0 * ratio
    );
}

#[test]
fn comm_ordering_none_lt_sparsified_lt_full() {
    let s = shape();
    assert_eq!(s.comm[&Strategy::PsgdPa], 0);
    assert!(s.comm[&Strategy::SpLpg] > 0);
    assert!(s.comm[&Strategy::SpLpg] < s.comm[&Strategy::SpLpgPlus]);
}
