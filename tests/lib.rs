//! Integration-test package: shared helpers for the cross-crate tests.
//!
//! The star here is [`prop`], a miniature property-based testing harness
//! (random case generation + greedy shrinking) built on the workspace's
//! own deterministic RNG — the container has no network access, so
//! `proptest`/`quickcheck` are not options, and determinism is a feature:
//! a failing case always reproduces under the same configured seed.

pub mod prop {
    //! In-tree property-based testing: seeded generators and greedy
    //! shrinking.
    //!
    //! A property test draws `cases` random inputs from a generator,
    //! checks a predicate on each, and — on failure — repeatedly replaces
    //! the failing input with the first *smaller* candidate (produced by
    //! the `shrink` function) that still fails, until no candidate fails
    //! or the step budget runs out. The minimal failing input is reported
    //! in the panic message together with the case's seed.
    //!
    //! ```
    //! use splpg_rng::RngCore;
    //! use splpg_tests::prop::{check, Config};
    //!
    //! // Every u32 doubles to an even number; shrinking is never needed.
    //! check(
    //!     Config::default(),
    //!     |rng| rng.next_u64() as u32,
    //!     |&x| if x > 1 { vec![x / 2, x - 1] } else { vec![] },
    //!     |&x| {
    //!         if (x as u64 * 2) % 2 == 0 { Ok(()) } else { Err("odd double".to_string()) }
    //!     },
    //! );
    //! ```

    use splpg_rng::rngs::StdRng;
    #[cfg(test)]
    use splpg_rng::RngCore;

    /// How many cases to run, from which base seed, and how hard to
    /// shrink.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of random cases to generate and check.
        pub cases: usize,
        /// Base seed; case `i` draws from the derived stream `i`.
        pub seed: u64,
        /// Upper bound on accepted shrink steps (defense against cyclic
        /// shrinkers; greedy shrinking normally terminates well before).
        pub max_shrink_steps: usize,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64, seed: 0x5eed_cafe, max_shrink_steps: 1024 }
        }
    }

    impl Config {
        /// Same configuration with a different base seed.
        pub fn with_seed(self, seed: u64) -> Self {
            Config { seed, ..self }
        }

        /// Same configuration with a different case count.
        pub fn with_cases(self, cases: usize) -> Self {
            Config { cases, ..self }
        }
    }

    /// Runs a property over `cfg.cases` generated inputs, greedily
    /// shrinking the first failure to a minimal reproducer.
    ///
    /// * `generate` draws a case from the given (seeded) RNG;
    /// * `shrink` proposes strictly-smaller variants of a failing case,
    ///   most aggressive first (return an empty vector when the value is
    ///   atomic);
    /// * `property` returns `Err(reason)` to fail a case.
    ///
    /// # Panics
    ///
    /// Panics with the minimal failing input, its seed, and the failure
    /// reason when the property does not hold.
    pub fn check<T, G, S, P>(cfg: Config, mut generate: G, shrink: S, mut property: P)
    where
        T: std::fmt::Debug,
        G: FnMut(&mut StdRng) -> T,
        S: Fn(&T) -> Vec<T>,
        P: FnMut(&T) -> Result<(), String>,
    {
        for case in 0..cfg.cases {
            let mut rng = splpg_rng::derive_stream(cfg.seed, case as u64);
            let value = generate(&mut rng);
            if let Err(reason) = property(&value) {
                let (minimal, reason, steps) =
                    shrink_failure(value, reason, &shrink, &mut property, cfg.max_shrink_steps);
                panic!(
                    "property failed (case {case} of seed {:#x}, {steps} shrink steps)\n\
                     minimal failing input: {minimal:?}\nreason: {reason}",
                    cfg.seed
                );
            }
        }
    }

    /// Greedy descent: take the first shrink candidate that still fails,
    /// repeat from there.
    fn shrink_failure<T, S, P>(
        mut value: T,
        mut reason: String,
        shrink: &S,
        property: &mut P,
        max_steps: usize,
    ) -> (T, String, usize)
    where
        S: Fn(&T) -> Vec<T>,
        P: FnMut(&T) -> Result<(), String>,
    {
        let mut steps = 0usize;
        'outer: while steps < max_steps {
            for candidate in shrink(&value) {
                if let Err(r) = property(&candidate) {
                    value = candidate;
                    reason = r;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (value, reason, steps)
    }

    /// Standard shrink for a `usize` towards `lo`: halving steps first,
    /// then the decrement.
    pub fn shrink_usize(x: usize, lo: usize) -> Vec<usize> {
        let mut out = Vec::new();
        if x > lo {
            let half = lo + (x - lo) / 2;
            if half != x {
                out.push(half);
            }
            out.push(x - 1);
        }
        out.dedup();
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        #[test]
        fn passing_property_runs_all_cases() {
            let mut ran = 0usize;
            check(
                Config::default().with_cases(10),
                |rng| rng.next_u64(),
                |_| vec![],
                |_| {
                    ran += 1;
                    Ok(())
                },
            );
            assert_eq!(ran, 10);
        }

        #[test]
        fn failures_shrink_to_the_minimal_input() {
            // Property "x < 100" fails for any generated x >= 100; greedy
            // shrinking over shrink_usize must land exactly on 100.
            let result = catch_unwind(AssertUnwindSafe(|| {
                check(
                    Config::default(),
                    |rng| 100 + (rng.next_u64() % 1000) as usize,
                    |&x| shrink_usize(x, 0),
                    |&x| {
                        if x < 100 {
                            Ok(())
                        } else {
                            Err(format!("{x} >= 100"))
                        }
                    },
                );
            }));
            let msg = *result.expect_err("property must fail").downcast::<String>().unwrap();
            assert!(
                msg.contains("minimal failing input: 100"),
                "shrinking did not reach the boundary: {msg}"
            );
        }

        #[test]
        fn generation_is_deterministic_per_seed() {
            let draw = |seed| {
                let mut out = Vec::new();
                check(
                    Config::default().with_cases(5).with_seed(seed),
                    |rng| rng.next_u64(),
                    |_| vec![],
                    |&x| {
                        out.push(x);
                        Ok(())
                    },
                );
                out
            };
            assert_eq!(draw(1), draw(1));
            assert_ne!(draw(1), draw(2));
        }

        #[test]
        fn shrink_usize_descends_to_bound() {
            assert_eq!(shrink_usize(10, 0), vec![5, 9]);
            assert_eq!(shrink_usize(1, 0), vec![0]);
            assert!(shrink_usize(3, 3).is_empty());
        }
    }
}
