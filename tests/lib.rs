//! Integration-test package.
