//! Finite-difference gradient checks for every GNN architecture.
//!
//! Each test builds a tiny fixed graph and mini-batch, runs the full
//! link-prediction forward pass (GNN encoder → MLP edge predictor →
//! BCE-with-logits), and compares the tape's analytic parameter gradients
//! against central finite differences over a random block of parameter
//! indices. Dropout is disabled so the forward pass is a pure function of
//! the parameters; everything is seeded, so failures reproduce exactly.
//!
//! The relative error uses the same `max(|a|, |n|, 1e-2)` denominator as
//! `splpg_tensor::grad_check`: the floor keeps f32 round-off on near-zero
//! gradients from registering as a large relative error.
//!
//! Each coordinate is differenced over a halving ladder of step sizes
//! (with Richardson extrapolation between adjacent steps) and scored by
//! its best-agreeing estimate: coordinates adjacent to a ReLU/LeakyReLU
//! kink need tiny steps, noise-limited ones need large steps, and no
//! single step serves both. A handful of kink-adjacent coordinates are
//! unmeasurable to 1e-3 in f32 — the loss is quantized at ~1 ULP, so the
//! derivative resolution at the small steps a nearby kink forces is
//! itself ~1e-3 absolute. The acceptance criterion is therefore
//! two-tier: at least [`QUANTILE`] of checked coordinates must agree
//! within [`TOLERANCE`], and every coordinate within [`HARD_CAP`]. A
//! genuinely wrong analytic gradient fails both at every step size
//! (numeric estimates converge to a different value, giving O(1)
//! relative error), so the check retains full bug-finding power.

use splpg::gnn::trainer::{ModelKind, TrainConfig};
use splpg::gnn::{
    edges_to_pairs, FeatureAccess, FullFeatureAccess, FullGraphAccess, NeighborSampler,
};
use splpg::graph::{Edge, FeatureMatrix, Graph, GraphBuilder, NodeId};
use splpg::nn::ParamSet;
use splpg::tensor::Tensor;
use splpg_rng::rngs::StdRng;
use splpg_rng::{Rng, SeedableRng};

/// Required relative agreement between analytic and numeric gradients
/// for the bulk of the coordinates.
const TOLERANCE: f64 = 1e-3;
/// Fraction of checked coordinates that must meet [`TOLERANCE`].
const QUANTILE: f64 = 0.9;
/// No coordinate may exceed this, kink-adjacent or not; real backward
/// bugs show O(1) relative errors at every step size.
const HARD_CAP: f64 = 3e-2;
/// How many randomly-chosen parameter indices to difference per model.
const BLOCK: usize = 48;

fn param_name_of(params: &ParamSet, elem: usize) -> String {
    let mut off = 0usize;
    for i in 0..params.len() {
        let n = params.value(i).len();
        if elem < off + n {
            return format!("{}[{}]", params.name(i), elem - off);
        }
        off += n;
    }
    "?".to_string()
}

/// A fixed 12-node test graph: ring plus deterministic chords.
fn test_graph() -> Graph {
    let n = 12usize;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as NodeId, ((v + 1) % n) as NodeId).unwrap();
    }
    for &(u, v) in &[(0u32, 5u32), (2, 9), (3, 7), (1, 10), (4, 11), (6, 0)] {
        b.add_edge(u, v).unwrap();
    }
    b.build()
}

fn test_features(n: usize, dim: usize, seed: u64) -> FeatureMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f32>> =
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-0.8f32..0.8)).collect()).collect();
    FeatureMatrix::from_rows(rows).unwrap()
}

/// Runs the full forward/backward gradient check for one architecture and
/// returns the best-achieved relative error per checked coordinate,
/// labelled with the parameter name.
fn gradcheck_model(kind: ModelKind, seed: u64) -> Vec<(String, f64)> {
    let graph = test_graph();
    let dim = 3usize;
    let features = test_features(graph.num_nodes(), dim, seed ^ 0xFEED);

    let cfg = TrainConfig {
        layers: 2,
        hidden: 4,
        dropout: 0.0,
        batch_size: 8,
        epochs: 1,
        learning_rate: 1e-3,
        fanouts: vec![None, None],
        hits_k: 10,
        seed,
    };
    let mut params = ParamSet::new();
    let mut init_rng = StdRng::seed_from_u64(seed);
    let model = cfg.build_model(kind, dim, &mut params, &mut init_rng);

    // A fixed mini-batch: four ring edges as positives, four non-edges as
    // negatives. Full-neighborhood fanouts make block sampling
    // deterministic regardless of RNG state.
    let positives = vec![Edge::new(0, 1), Edge::new(2, 3), Edge::new(5, 6), Edge::new(8, 9)];
    let negatives = vec![Edge::new(0, 7), Edge::new(2, 11), Edge::new(5, 9), Edge::new(1, 8)];
    let (seeds, pairs, labels) = edges_to_pairs(&positives, &negatives);
    let access = FullGraphAccess::new(&graph);
    let mut batch_rng = StdRng::seed_from_u64(seed ^ 0xB00C);
    let batch = NeighborSampler::full(cfg.layers).sample(&access, &seeds, &mut batch_rng);
    let input = FullFeatureAccess::new(&features).gather(batch.input_nodes());

    // One tape serves the analytic pass and every finite-difference
    // evaluation below: `reset()` recycles its arena between passes, so
    // the check also exercises the buffer-reuse path the trainers run on.
    let mut tape = splpg::tensor::Tape::new();

    // Analytic gradients, flattened in canonical parameter order.
    let binding = params.bind(&mut tape);
    let x = tape.leaf_copy(&input);
    let logits = model.score_pairs(&mut tape, &binding, x, &batch, &pairs, None);
    let loss = tape.bce_with_logits(logits, &labels);
    let mut grads = tape.backward(loss);
    let analytic: Vec<f32> = binding
        .collect_grads(&params, &mut grads)
        .iter()
        .flat_map(Tensor::data)
        .copied()
        .collect();
    tape.recycle_gradients(grads);

    let mut loss_at = |flat: &[f32]| -> f64 {
        let mut p = params.clone();
        p.load_flat(flat).unwrap();
        tape.reset();
        let binding = p.bind(&mut tape);
        let x = tape.leaf_copy(&input);
        let logits = model.score_pairs(&mut tape, &binding, x, &batch, &pairs, None);
        let loss = tape.bce_with_logits(logits, &labels);
        tape.value(loss).get(0, 0) as f64
    };

    let flat = params.to_flat();
    assert_eq!(analytic.len(), flat.len(), "one gradient per parameter element");

    // Random block of indices to difference (all of them if the model is
    // small enough).
    let mut pick_rng = StdRng::seed_from_u64(seed ^ 0x1D1CE5);
    let mut indices: Vec<usize> = (0..flat.len()).collect();
    while indices.len() > BLOCK {
        let drop = pick_rng.gen_range(0..indices.len());
        indices.swap_remove(drop);
    }

    // Halving ladder of step sizes: adjacent entries support Richardson
    // extrapolation, and the range covers both kink-adjacent coordinates
    // (need tiny steps) and noise-limited ones (need large steps).
    let ladder: Vec<f64> = (0..14).map(|k| 1e-1 / f64::powi(2.0, k)).collect();

    indices
        .iter()
        .map(|&i| {
            let a = analytic[i] as f64;
            let diffs: Vec<f64> = ladder
                .iter()
                .map(|&eps| {
                    let mut plus = flat.clone();
                    plus[i] += eps as f32;
                    let mut minus = flat.clone();
                    minus[i] -= eps as f32;
                    (loss_at(&plus) - loss_at(&minus)) / (2.0 * eps)
                })
                .collect();
            // Candidate estimates: every raw central difference plus every
            // Richardson combination of adjacent halved steps (cancels the
            // O(eps^2) curvature term).
            let mut candidates = diffs.clone();
            for w in diffs.windows(2) {
                candidates.push((4.0 * w[1] - w[0]) / 3.0);
            }
            let best = candidates
                .iter()
                .map(|&n| (a - n).abs() / a.abs().max(n.abs()).max(1e-2))
                .fold(f64::INFINITY, f64::min);
            (param_name_of(&params, i), best)
        })
        .collect()
}

fn assert_gradients_match(kind: ModelKind, seed: u64) {
    let report = gradcheck_model(kind, seed);
    let checked = report.len();
    assert!(checked > 0, "no parameters checked for {kind:?}");
    let mut rels: Vec<f64> = report.iter().map(|&(_, r)| r).collect();
    rels.sort_by(f64::total_cmp);
    let quantile = rels[((checked as f64 * QUANTILE).ceil() as usize - 1).min(checked - 1)];
    let max_rel = rels[checked - 1];
    let offenders: Vec<String> = report
        .iter()
        .filter(|&&(_, r)| r >= TOLERANCE)
        .map(|(name, r)| format!("{name}: {r:.3e}"))
        .collect();
    assert!(
        quantile < TOLERANCE && max_rel < HARD_CAP,
        "{kind:?}: analytic vs central-difference gradients disagree \
         (quantile-{QUANTILE} rel err {quantile:.3e} vs tol {TOLERANCE:.0e}, \
         max {max_rel:.3e} vs cap {HARD_CAP:.0e}, over {checked} indices)\n\
         coordinates above tolerance:\n  {}",
        offenders.join("\n  ")
    );
}

#[test]
fn gcn_gradients_match_finite_differences() {
    assert_gradients_match(ModelKind::Gcn, 11);
}

#[test]
fn graphsage_gradients_match_finite_differences() {
    assert_gradients_match(ModelKind::GraphSage, 12);
}

#[test]
fn gat_gradients_match_finite_differences() {
    assert_gradients_match(ModelKind::Gat, 13);
}

#[test]
fn gatv2_gradients_match_finite_differences() {
    assert_gradients_match(ModelKind::GatV2, 14);
}

#[test]
fn gin_gradients_match_finite_differences() {
    assert_gradients_match(ModelKind::Gin, 15);
}

#[test]
fn gcn_gradients_match_on_a_pooled_multi_thread_tape() {
    // Same check through the arena-reusing tape with a >1-thread pool
    // active: kernel outputs are thread-count invariant by construction,
    // so the pooled run must agree with finite differences exactly as the
    // default run does.
    splpg_par::set_num_threads(4);
    assert_gradients_match(ModelKind::Gcn, 11);
    splpg_par::set_num_threads(0);
}

#[test]
fn edge_predictor_gradients_flow_to_the_mlp_head() {
    // The MLP head's parameters are registered after the GNN's; verify the
    // analytic gradient block for the head is non-trivially nonzero (the
    // finite-difference agreement above covers its correctness).
    let graph = test_graph();
    let dim = 3usize;
    let features = test_features(graph.num_nodes(), dim, 0xE0);
    let cfg = TrainConfig {
        layers: 2,
        hidden: 4,
        dropout: 0.0,
        batch_size: 8,
        epochs: 1,
        learning_rate: 1e-3,
        fanouts: vec![None, None],
        hits_k: 10,
        seed: 11,
    };
    let mut gnn_only = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(11);
    let _ = cfg.build_model(ModelKind::Gcn, dim, &mut gnn_only, &mut rng);
    let gnn_elems: usize = (0..gnn_only.len()).map(|i| gnn_only.value(i).len()).sum();

    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(11);
    let model = cfg.build_model(ModelKind::Gcn, dim, &mut params, &mut rng);
    // `build_model` registers GNN weights first, then the predictor MLP —
    // but `gnn_only` above also includes its own MLP head, so recompute
    // the boundary from the parameter names instead.
    let head_start: usize = (0..params.len())
        .find(|&i| params.name(i).starts_with("edge_mlp"))
        .map(|i| (0..i).map(|j| params.value(j).len()).sum())
        .expect("predictor parameters registered");
    assert!(head_start < gnn_elems, "head follows the encoder block");

    // Asymmetric batch (3 positives, 1 negative): a balanced batch at an
    // all-zero-logit initialization makes the final-bias gradient cancel
    // exactly, which would defeat this smoke check.
    let positives = vec![Edge::new(0, 1), Edge::new(4, 5), Edge::new(8, 9)];
    let negatives = vec![Edge::new(0, 9)];
    let (seeds, pairs, labels) = edges_to_pairs(&positives, &negatives);
    let access = FullGraphAccess::new(&graph);
    let mut batch_rng = StdRng::seed_from_u64(7);
    let batch = NeighborSampler::full(cfg.layers).sample(&access, &seeds, &mut batch_rng);
    let input = FullFeatureAccess::new(&features).gather(batch.input_nodes());

    let mut tape = splpg::tensor::Tape::new();
    let binding = params.bind(&mut tape);
    let x = tape.leaf(input);
    let logits = model.score_pairs(&mut tape, &binding, x, &batch, &pairs, None);
    let loss = tape.bce_with_logits(logits, &labels);
    let mut grads = tape.backward(loss);
    let flat_grads: Vec<f32> = binding
        .collect_grads(&params, &mut grads)
        .iter()
        .flat_map(Tensor::data)
        .copied()
        .collect();
    let head_norm: f64 =
        flat_grads[head_start..].iter().map(|&g| (g as f64) * (g as f64)).sum::<f64>().sqrt();
    assert!(head_norm > 1e-6, "predictor head received no gradient (norm {head_norm:.3e})");
}

