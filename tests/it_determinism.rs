//! Reproducibility: identical seeds must give identical runs, across both
//! synchronization methods and despite multi-threaded workers.

use splpg::prelude::*;

fn run(sync: SyncMethod, seed: u64) -> (f64, u64) {
    let data = DatasetSpec::citeseer().generate(Scale::new(0.05, 16), 3).expect("generate");
    let out = SpLpg::builder()
        .workers(2)
        .strategy(Strategy::SpLpg)
        .sync(sync)
        .epochs(3)
        .hidden(8)
        .layers(2)
        .fanouts(vec![Some(5), Some(5)])
        .hits_k(10)
        .seed(seed)
        .build()
        .run(ModelKind::GraphSage, &data)
        .expect("run");
    (out.test_hits, out.comm.total_bytes())
}

#[test]
fn model_averaging_is_deterministic() {
    assert_eq!(run(SyncMethod::ModelAveraging, 5), run(SyncMethod::ModelAveraging, 5));
}

#[test]
fn gradient_averaging_is_deterministic() {
    assert_eq!(run(SyncMethod::GradientAveraging, 5), run(SyncMethod::GradientAveraging, 5));
}

#[test]
fn different_seeds_differ() {
    // Not a strict requirement, but a sanity check that the seed actually
    // feeds the pipeline: two seeds should almost surely differ in comm
    // bytes (different partitions/negatives) or accuracy.
    let a = run(SyncMethod::ModelAveraging, 1);
    let b = run(SyncMethod::ModelAveraging, 2);
    assert!(a != b, "two seeds produced identical runs: {a:?}");
}

#[test]
fn splpg_run_invariant_to_thread_count() {
    // The parallel compute layer must not change results: a fixed-seed
    // SpLPG run on a 1-thread pool and an 8-thread pool must produce
    // bit-identical loss curves, accuracy, and comm bytes. Parallel work
    // is partitioned by item index (never by thread id), so the epoch
    // stats compare exactly — including `mean_loss` as f32.
    let data = DatasetSpec::citeseer().generate(Scale::new(0.05, 16), 11).expect("generate");
    let run_with = |threads: usize| {
        splpg_par::set_num_threads(threads);
        let out = SpLpg::builder()
            .workers(2)
            .strategy(Strategy::SpLpg)
            .sync(SyncMethod::ModelAveraging)
            .epochs(2)
            .hidden(8)
            .layers(2)
            .fanouts(vec![Some(5), Some(5)])
            .hits_k(10)
            .seed(23)
            .build()
            .run(ModelKind::GraphSage, &data)
            .expect("run");
        splpg_par::set_num_threads(0);
        out
    };
    let single = run_with(1);
    let pooled = run_with(8);
    assert_eq!(single.epochs, pooled.epochs, "loss curves diverged across thread counts");
    assert_eq!(single.test_hits, pooled.test_hits);
    assert_eq!(single.comm.total_bytes(), pooled.comm.total_bytes());
}

#[test]
fn tape_loss_trajectory_bit_identical_across_thread_counts() {
    // The parallel aggregation kernels (gather_rows / segment_sum /
    // segment_softmax and friends) partition by destination row, never by
    // thread id, so a reused-arena training loop must produce bit-identical
    // per-step losses on a 1-thread and a 4-thread pool. Sizes sit above
    // the ≥2M-flop parallel threshold so the pooled run actually takes the
    // parallel path.
    use splpg::tensor::{Tape, Tensor};
    use splpg_rng::rngs::StdRng;
    use splpg_rng::{Rng, SeedableRng};

    const NODES: usize = 50_000;
    const EDGES: usize = 300_000;
    const DIM: usize = 8;

    fn trajectory(threads: usize) -> Vec<u32> {
        splpg_par::set_num_threads(threads);
        let mut rng = StdRng::seed_from_u64(99);
        let mut w = Tensor::from_fn(DIM, DIM, |_, _| rng.gen_range(-0.5f32..0.5));
        let x = Tensor::from_fn(NODES, DIM, |_, _| rng.gen_range(-1.0f32..1.0));
        let idx: Vec<u32> = (0..EDGES).map(|_| rng.gen_range(0..NODES as u32)).collect();
        let seg: Vec<u32> = (0..EDGES).map(|i| (i * NODES / EDGES) as u32).collect();
        let labels: Vec<f32> = (0..NODES).map(|i| (i % 2) as f32).collect();

        let mut tape = Tape::new();
        let mut losses = Vec::new();
        for _step in 0..4 {
            tape.reset();
            let wv = tape.leaf_copy(&w);
            let xv = tape.leaf_copy(&x);
            let gathered = tape.gather_rows(xv, &idx);
            let product = tape.matmul(gathered, wv);
            let hidden = tape.relu(product);
            let scores = tape.row_sum(hidden);
            let attn = tape.segment_softmax(scores, &seg, NODES);
            let weighted = tape.mul_col_broadcast(hidden, attn);
            let pooled = tape.segment_sum(weighted, &seg, NODES);
            let logits = tape.row_sum(pooled);
            let loss = tape.bce_with_logits(logits, &labels);
            losses.push(tape.value(loss).get(0, 0).to_bits());

            let mut grads = tape.backward(loss);
            let gw = grads.take(wv).expect("weight gradient");
            w = Tensor::from_fn(DIM, DIM, |r, c| w.get(r, c) - 0.1 * gw.get(r, c));
            tape.recycle(gw);
            tape.recycle_gradients(grads);
        }
        splpg_par::set_num_threads(0);
        losses
    }

    let single = trajectory(1);
    let pooled = trajectory(4);
    assert_eq!(single, pooled, "per-step losses diverged between 1 and 4 threads");
    assert_eq!(single.len(), 4);
    assert!(single.windows(2).any(|w| w[0] != w[1]), "training made no progress");
}

/// FNV-1a over a stream of u64 words — cheap, dependency-free, and stable
/// across platforms for the value ranges hashed here.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn write(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// Builds the structures whose determinism the lint rules protect —
/// partition assignments, sampled mini-batch blocks, and split negatives —
/// and folds them into one order-sensitive fingerprint.
fn det_fingerprint() -> u64 {
    use splpg::gnn::{FullGraphAccess, NeighborSampler};
    use splpg_rng::rngs::StdRng;
    use splpg_rng::SeedableRng;

    let data = DatasetSpec::cora().generate(Scale::new(0.05, 16), 41).expect("generate");
    let mut fp = Fnv::new();

    // Partition assignments (MetisLike iterates adjacency maps internally).
    let mut rng = StdRng::seed_from_u64(17);
    let part = MetisLike::default().partition(&data.graph, 4, &mut rng).expect("partition");
    for &p in part.assignments() {
        fp.write(p as u64);
    }

    // Sampled blocks: node order within blocks must match across processes.
    let sampler = NeighborSampler::new(vec![Some(5), Some(5)]);
    let access = FullGraphAccess::new(&data.graph);
    let seeds: Vec<NodeId> = (0..32).map(|i| (i * 3) % data.graph.num_nodes() as NodeId).collect();
    let batch = sampler.sample(&access, &seeds, &mut rng);
    for block in &batch.blocks {
        fp.write(block.num_dst as u64);
        for &s in &block.src_ids {
            fp.write(s as u64);
        }
        for (&es, &ed) in block.edge_src.iter().zip(&block.edge_dst) {
            fp.write(((es as u64) << 32) | ed as u64);
        }
    }

    // Split negatives in their emitted order (sample_global_negatives used
    // to inherit HashSet iteration order, which varies per process).
    for e in data.split.test_neg.iter().chain(&data.split.valid_neg) {
        fp.write(((e.src as u64) << 32) | e.dst as u64);
    }
    fp.0
}

#[test]
fn fingerprint_is_stable_across_fresh_processes() {
    // In-process repetition cannot catch per-process randomness (std's
    // HashMap RandomState draws a new key per process), so this test
    // re-executes itself twice as child processes and compares the
    // fingerprints they print.
    if std::env::var_os("SPLPG_DET_CHILD").is_some() {
        println!("SPLPG_FP={:016x}", det_fingerprint());
        return;
    }
    let exe = std::env::current_exe().expect("current_exe");
    let run_child = || {
        let out = std::process::Command::new(&exe)
            .args([
                "fingerprint_is_stable_across_fresh_processes",
                "--exact",
                "--nocapture",
                "--test-threads=1",
            ])
            .env("SPLPG_DET_CHILD", "1")
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "child run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The libtest harness writes `test <name> ... ` with no newline
        // before the test body's own output, so the marker is mid-line.
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find_map(|l| l.split("SPLPG_FP=").nth(1).map(str::to_string))
            .expect("child did not print a fingerprint")
    };
    let first = run_child();
    let second = run_child();
    assert_eq!(
        first, second,
        "partition/sampling/negative fingerprints diverged across fresh processes"
    );
}

fn mp_trainer(workers: usize) -> DistTrainer {
    let dist = DistConfig {
        num_workers: workers,
        strategy: Strategy::SpLpg,
        sync: SyncMethod::ModelAveraging,
        ..Default::default()
    };
    let train = TrainConfig {
        epochs: 2,
        hidden: 8,
        layers: 2,
        fanouts: vec![Some(5), Some(5)],
        hits_k: 10,
        batch_size: 128,
        seed: 31,
        ..Default::default()
    };
    DistTrainer::new(dist, train)
}

fn mp_dataset() -> Dataset {
    DatasetSpec::cora().generate(Scale::new(0.05, 16), 7).expect("generate")
}

#[test]
fn multiprocess_tcp_matches_sequential_reference() {
    // The strongest transport claim in the repo: spawn the workers as real
    // OS processes talking to the master over loopback TCP, and demand the
    // outcome be bit-identical to the sequential in-process reference —
    // for p = 2 and p = 4. A spawned child re-enters this very test, takes
    // the tcp_worker_entry branch, serves its replica, and returns.
    let served = tcp_worker_entry(|workers| Ok((mp_trainer(workers), ModelKind::GraphSage, mp_dataset())))
        .expect("worker child failed");
    if served {
        return;
    }
    if std::net::TcpListener::bind(("127.0.0.1", 0)).is_err() {
        eprintln!("SKIP: loopback sockets unavailable in this environment");
        return;
    }
    let child_args: Vec<String> = [
        "multiprocess_tcp_matches_sequential_reference",
        "--exact",
        "--nocapture",
        "--test-threads=1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let data = mp_dataset();
    for p in [2usize, 4] {
        let t = mp_trainer(p);
        let reference = t.run_reference(ModelKind::GraphSage, &data).expect("reference");
        let out = t.run_multiprocess(ModelKind::GraphSage, &data, &child_args).expect("cluster");
        assert_eq!(
            out.epochs, reference.epochs,
            "p={p}: loss curve over sockets diverged from the sequential reference"
        );
        assert_eq!(
            out.test_hits.to_bits(),
            reference.test_hits.to_bits(),
            "p={p}: test accuracy diverged"
        );
        assert_eq!(
            out.comm.total_bytes(),
            reference.comm.total_bytes(),
            "p={p}: communication meters diverged"
        );
        assert_eq!(
            out.net.data_bytes,
            out.comm.total_bytes(),
            "p={p}: socket-carried fetch ledgers disagree with the comm meters"
        );
        assert!(out.net.dead_workers.is_empty(), "p={p}: fault-free run declared deaths");
    }
}

#[test]
fn dataset_generation_is_deterministic() {
    let a = DatasetSpec::pubmed().generate(Scale::tiny(), 9).expect("generate");
    let b = DatasetSpec::pubmed().generate(Scale::tiny(), 9).expect("generate");
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.features, b.features);
    assert_eq!(a.split.test, b.split.test);
}
