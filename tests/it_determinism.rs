//! Reproducibility: identical seeds must give identical runs, across both
//! synchronization methods and despite multi-threaded workers.

use splpg::prelude::*;

fn run(sync: SyncMethod, seed: u64) -> (f64, u64) {
    let data = DatasetSpec::citeseer().generate(Scale::new(0.05, 16), 3).expect("generate");
    let out = SpLpg::builder()
        .workers(2)
        .strategy(Strategy::SpLpg)
        .sync(sync)
        .epochs(3)
        .hidden(8)
        .layers(2)
        .fanouts(vec![Some(5), Some(5)])
        .hits_k(10)
        .seed(seed)
        .build()
        .run(ModelKind::GraphSage, &data)
        .expect("run");
    (out.test_hits, out.comm.total_bytes())
}

#[test]
fn model_averaging_is_deterministic() {
    assert_eq!(run(SyncMethod::ModelAveraging, 5), run(SyncMethod::ModelAveraging, 5));
}

#[test]
fn gradient_averaging_is_deterministic() {
    assert_eq!(run(SyncMethod::GradientAveraging, 5), run(SyncMethod::GradientAveraging, 5));
}

#[test]
fn different_seeds_differ() {
    // Not a strict requirement, but a sanity check that the seed actually
    // feeds the pipeline: two seeds should almost surely differ in comm
    // bytes (different partitions/negatives) or accuracy.
    let a = run(SyncMethod::ModelAveraging, 1);
    let b = run(SyncMethod::ModelAveraging, 2);
    assert!(a != b, "two seeds produced identical runs: {a:?}");
}

#[test]
fn splpg_run_invariant_to_thread_count() {
    // The parallel compute layer must not change results: a fixed-seed
    // SpLPG run on a 1-thread pool and an 8-thread pool must produce
    // bit-identical loss curves, accuracy, and comm bytes. Parallel work
    // is partitioned by item index (never by thread id), so the epoch
    // stats compare exactly — including `mean_loss` as f32.
    let data = DatasetSpec::citeseer().generate(Scale::new(0.05, 16), 11).expect("generate");
    let run_with = |threads: usize| {
        splpg_par::set_num_threads(threads);
        let out = SpLpg::builder()
            .workers(2)
            .strategy(Strategy::SpLpg)
            .sync(SyncMethod::ModelAveraging)
            .epochs(2)
            .hidden(8)
            .layers(2)
            .fanouts(vec![Some(5), Some(5)])
            .hits_k(10)
            .seed(23)
            .build()
            .run(ModelKind::GraphSage, &data)
            .expect("run");
        splpg_par::set_num_threads(0);
        out
    };
    let single = run_with(1);
    let pooled = run_with(8);
    assert_eq!(single.epochs, pooled.epochs, "loss curves diverged across thread counts");
    assert_eq!(single.test_hits, pooled.test_hits);
    assert_eq!(single.comm.total_bytes(), pooled.comm.total_bytes());
}

#[test]
fn dataset_generation_is_deterministic() {
    let a = DatasetSpec::pubmed().generate(Scale::tiny(), 9).expect("generate");
    let b = DatasetSpec::pubmed().generate(Scale::tiny(), 9).expect("generate");
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.features, b.features);
    assert_eq!(a.split.test, b.split.test);
}
