//! Codec robustness under a hostile wire: whatever bytes arrive —
//! truncated, corrupted, or carrying an inflated length prefix — the
//! decoder must return a typed error or a valid message, never panic,
//! and never allocate on the say-so of an unvalidated length field.

use splpg_net::codec::{self, DEFAULT_MAX_FRAME_LEN};
use splpg_net::{FetchLedger, Message, MsgId, NetError, Request, Response};
use splpg_rng::rngs::StdRng;
use splpg_rng::{Rng, SeedableRng};

fn random_id(rng: &mut StdRng) -> MsgId {
    MsgId {
        worker: rng.gen_range(0..16),
        epoch: rng.gen_range(0..1000),
        round: rng.gen_range(0..100),
        attempt: rng.gen_range(0..8),
    }
}

fn random_params(rng: &mut StdRng) -> Vec<f32> {
    let n = rng.gen_range(0..64);
    (0..n).map(|_| rng.gen_range(-10.0f32..10.0)).collect()
}

fn random_ledger(rng: &mut StdRng) -> FetchLedger {
    FetchLedger {
        structure_edges: rng.gen_range(0..10_000),
        structure_nodes: rng.gen_range(0..10_000),
        feature_elems: rng.gen_range(0..100_000),
    }
}

/// One random message of any protocol kind.
fn random_message(rng: &mut StdRng) -> Message {
    let id = random_id(rng);
    match rng.gen_range(0..7u32) {
        0 => Message::Request(Request::Epoch { id, params: random_params(rng) }),
        1 => Message::Request(Request::Round { id, params: random_params(rng) }),
        2 => Message::Request(Request::Stop { id }),
        3 => Message::Response(Response::Epoch {
            id,
            params: random_params(rng),
            loss_sum: rng.gen_range(-1000.0f64..1000.0),
            batches: rng.gen_range(0..1000),
            ledger: random_ledger(rng),
        }),
        4 => Message::Response(Response::Round {
            id,
            active: rng.gen_range(0..2u32) == 0,
            loss: rng.gen_range(-10.0f32..10.0),
            grads: random_params(rng),
            ledger: random_ledger(rng),
        }),
        5 => Message::Response(Response::Unavailable { id }),
        _ => {
            let n = rng.gen_range(0..32);
            let error: String = (0..n).map(|_| rng.gen_range(b' '..b'~') as char).collect();
            Message::Response(Response::Failed { id, error })
        }
    }
}

#[test]
fn random_messages_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    for _ in 0..500 {
        let msg = random_message(&mut rng);
        let frame = msg.encode();
        let back = codec::decode(&frame).expect("valid frame must decode");
        assert_eq!(back, msg, "round trip changed the message");
    }
}

#[test]
fn truncation_at_every_cut_point_is_a_typed_error() {
    // A prefix of a valid frame is never a valid frame: the length field
    // no longer matches, or the header/payload ends mid-read. Every cut
    // must surface as Err — not panic, not a silently mangled message.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..25 {
        let frame = random_message(&mut rng).encode();
        for cut in 0..frame.len() {
            let res = codec::decode(&frame[..cut]);
            assert!(res.is_err(), "decode accepted a frame truncated to {cut}/{}", frame.len());
        }
    }
}

#[test]
fn length_inflation_is_rejected_with_a_typed_error() {
    // An attacker-controlled length prefix claiming more bytes than the
    // body carries must be rejected: beyond-cap values as FrameTooLarge
    // (before any allocation), in-cap lies as a Codec mismatch.
    let mut rng = StdRng::seed_from_u64(11);
    let frame = random_message(&mut rng).encode();

    let mut huge = frame.clone();
    huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    match codec::decode(&huge) {
        Err(NetError::FrameTooLarge { len, max }) => {
            assert_eq!(len, u32::MAX as usize);
            assert_eq!(max, DEFAULT_MAX_FRAME_LEN);
        }
        other => panic!("inflated prefix must be FrameTooLarge, got {other:?}"),
    }

    let mut liar = frame.clone();
    let inflated = (frame.len() - 4 + 1) as u32;
    liar[..4].copy_from_slice(&inflated.to_le_bytes());
    assert!(
        matches!(codec::decode(&liar), Err(NetError::Codec(_))),
        "in-cap length lie must be a Codec error"
    );
}

#[test]
fn read_frame_rejects_hostile_prefixes_without_allocating() {
    // Streaming path: the cap is enforced on the raw prefix before the
    // body buffer exists, so a 4-byte hostile hello cannot make the
    // receiver allocate 4 GiB.
    let mut hostile = std::io::Cursor::new((u32::MAX - 1).to_le_bytes().to_vec());
    match codec::read_frame(&mut hostile, 1024) {
        Err(NetError::FrameTooLarge { len, max }) => {
            assert_eq!(len, (u32::MAX - 1) as usize);
            assert_eq!(max, 1024);
        }
        other => panic!("hostile prefix must be FrameTooLarge, got {other:?}"),
    }

    // A prefix at exactly the cap followed by a truncated body must be a
    // mid-frame stream end, still typed.
    let mut bytes = 16u32.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0u8; 8]);
    let mut short = std::io::Cursor::new(bytes);
    assert!(matches!(codec::read_frame(&mut short, 16), Err(NetError::Codec(_))));
}

#[test]
fn random_corruption_never_panics_or_over_allocates() {
    // Flip bytes anywhere in valid frames: the decoder must always return
    // — a typed error for mangled frames, or a (different but valid)
    // message when the flip landed in payload bytes. The length prefix is
    // cap-checked before it is trusted, so no flip can trigger a huge
    // allocation either.
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..200 {
        let mut frame = random_message(&mut rng).encode();
        let flips = rng.gen_range(1..4usize);
        for _ in 0..flips {
            let pos = rng.gen_range(0..frame.len());
            let bit = rng.gen_range(0..8u32);
            frame[pos] ^= 1 << bit;
        }
        match codec::decode(&frame) {
            Ok(msg) => {
                // Corruption that survives decoding must still re-encode
                // to a self-consistent frame.
                let re = msg.encode();
                assert_eq!(codec::decode(&re).expect("re-encoded frame must decode"), msg);
            }
            Err(
                NetError::Codec(_) | NetError::FrameTooLarge { .. } | NetError::Io(_),
            ) => {}
            Err(other) => panic!("unexpected error class for corrupted frame: {other:?}"),
        }
    }
}

#[test]
fn streamed_frames_round_trip_through_read_frame() {
    // A stream of many frames back to back, then a clean EOF: read_frame
    // must hand back each frame intact and end with Ok(None).
    let mut rng = StdRng::seed_from_u64(31);
    let messages: Vec<Message> = (0..32).map(|_| random_message(&mut rng)).collect();
    let mut stream = Vec::new();
    for m in &messages {
        stream.extend_from_slice(&m.encode());
    }
    let mut cursor = std::io::Cursor::new(stream);
    for (i, expected) in messages.iter().enumerate() {
        let frame = codec::read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN)
            .expect("stream read failed")
            .unwrap_or_else(|| panic!("stream ended early at frame {i}"));
        assert_eq!(&codec::decode(&frame).expect("framed bytes must decode"), expected);
    }
    assert!(
        codec::read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("eof read failed").is_none(),
        "clean EOF at a frame boundary must be Ok(None)"
    );
}
