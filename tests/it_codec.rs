//! Codec robustness under a hostile wire: whatever bytes arrive —
//! truncated, corrupted, or carrying an inflated length prefix — the
//! decoder must return a typed error or a valid message, never panic,
//! and never allocate on the say-so of an unvalidated length field.

use splpg_net::codec::{self, DEFAULT_MAX_FRAME_LEN};
use splpg_net::compress::{
    decode_ids, encode_ids, encoded_ids_len, f16_to_f32, f32_to_f16, int8_round_trip,
};
use splpg_net::{
    CodecConfig, FeatCodec, FetchLedger, Message, MsgId, NetError, Request, Response, StructCodec,
};
use splpg_rng::rngs::StdRng;
use splpg_rng::{Rng, SeedableRng};

fn random_id(rng: &mut StdRng) -> MsgId {
    MsgId {
        worker: rng.gen_range(0..16),
        epoch: rng.gen_range(0..1000),
        round: rng.gen_range(0..100),
        attempt: rng.gen_range(0..8),
    }
}

fn random_params(rng: &mut StdRng) -> Vec<f32> {
    let n = rng.gen_range(0..64);
    (0..n).map(|_| rng.gen_range(-10.0f32..10.0)).collect()
}

fn random_ledger(rng: &mut StdRng) -> FetchLedger {
    FetchLedger {
        structure_edges: rng.gen_range(0..10_000),
        structure_nodes: rng.gen_range(0..10_000),
        feature_elems: rng.gen_range(0..100_000),
        structure_wire_bytes: rng.gen_range(0..1_000_000),
        feature_wire_bytes: rng.gen_range(0..1_000_000),
        feature_bus_elems: rng.gen_range(0..100_000),
    }
}

/// Every codec configuration the wire can negotiate.
fn all_configs() -> Vec<CodecConfig> {
    let mut out = Vec::new();
    for structure in [StructCodec::None, StructCodec::Varint, StructCodec::Rle] {
        for features in [FeatCodec::F32, FeatCodec::F16, FeatCodec::Int8] {
            out.push(CodecConfig { structure, features });
        }
    }
    out
}

/// One random message of any protocol kind.
fn random_message(rng: &mut StdRng) -> Message {
    let id = random_id(rng);
    match rng.gen_range(0..7u32) {
        0 => Message::Request(Request::Epoch { id, params: random_params(rng) }),
        1 => Message::Request(Request::Round { id, params: random_params(rng) }),
        2 => Message::Request(Request::Stop { id }),
        3 => Message::Response(Response::Epoch {
            id,
            params: random_params(rng),
            loss_sum: rng.gen_range(-1000.0f64..1000.0),
            batches: rng.gen_range(0..1000),
            ledger: random_ledger(rng),
        }),
        4 => Message::Response(Response::Round {
            id,
            active: rng.gen_range(0..2u32) == 0,
            loss: rng.gen_range(-10.0f32..10.0),
            grads: random_params(rng),
            ledger: random_ledger(rng),
        }),
        5 => Message::Response(Response::Unavailable { id }),
        _ => {
            let n = rng.gen_range(0..32);
            let error: String = (0..n).map(|_| rng.gen_range(b' '..b'~') as char).collect();
            Message::Response(Response::Failed { id, error })
        }
    }
}

#[test]
fn random_messages_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    for _ in 0..500 {
        let msg = random_message(&mut rng);
        let frame = msg.encode();
        let back = codec::decode(&frame).expect("valid frame must decode");
        assert_eq!(back, msg, "round trip changed the message");
    }
}

#[test]
fn truncation_at_every_cut_point_is_a_typed_error() {
    // A prefix of a valid frame is never a valid frame: the length field
    // no longer matches, or the header/payload ends mid-read. Every cut
    // must surface as Err — not panic, not a silently mangled message.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..25 {
        let frame = random_message(&mut rng).encode();
        for cut in 0..frame.len() {
            let res = codec::decode(&frame[..cut]);
            assert!(res.is_err(), "decode accepted a frame truncated to {cut}/{}", frame.len());
        }
    }
}

#[test]
fn length_inflation_is_rejected_with_a_typed_error() {
    // An attacker-controlled length prefix claiming more bytes than the
    // body carries must be rejected: beyond-cap values as FrameTooLarge
    // (before any allocation), in-cap lies as a Codec mismatch.
    let mut rng = StdRng::seed_from_u64(11);
    let frame = random_message(&mut rng).encode();

    let mut huge = frame.clone();
    huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    match codec::decode(&huge) {
        Err(NetError::FrameTooLarge { len, max }) => {
            assert_eq!(len, u32::MAX as usize);
            assert_eq!(max, DEFAULT_MAX_FRAME_LEN);
        }
        other => panic!("inflated prefix must be FrameTooLarge, got {other:?}"),
    }

    let mut liar = frame.clone();
    let inflated = (frame.len() - 4 + 1) as u32;
    liar[..4].copy_from_slice(&inflated.to_le_bytes());
    assert!(
        matches!(codec::decode(&liar), Err(NetError::Codec(_))),
        "in-cap length lie must be a Codec error"
    );
}

#[test]
fn read_frame_rejects_hostile_prefixes_without_allocating() {
    // Streaming path: the cap is enforced on the raw prefix before the
    // body buffer exists, so a 4-byte hostile hello cannot make the
    // receiver allocate 4 GiB.
    let mut hostile = std::io::Cursor::new((u32::MAX - 1).to_le_bytes().to_vec());
    match codec::read_frame(&mut hostile, 1024) {
        Err(NetError::FrameTooLarge { len, max }) => {
            assert_eq!(len, (u32::MAX - 1) as usize);
            assert_eq!(max, 1024);
        }
        other => panic!("hostile prefix must be FrameTooLarge, got {other:?}"),
    }

    // A prefix at exactly the cap followed by a truncated body must be a
    // mid-frame stream end, still typed.
    let mut bytes = 16u32.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0u8; 8]);
    let mut short = std::io::Cursor::new(bytes);
    assert!(matches!(codec::read_frame(&mut short, 16), Err(NetError::Codec(_))));
}

#[test]
fn random_corruption_never_panics_or_over_allocates() {
    // Flip bytes anywhere in valid frames: the decoder must always return
    // — a typed error for mangled frames, or a (different but valid)
    // message when the flip landed in payload bytes. The length prefix is
    // cap-checked before it is trusted, so no flip can trigger a huge
    // allocation either.
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..200 {
        let mut frame = random_message(&mut rng).encode();
        let flips = rng.gen_range(1..4usize);
        for _ in 0..flips {
            let pos = rng.gen_range(0..frame.len());
            let bit = rng.gen_range(0..8u32);
            frame[pos] ^= 1 << bit;
        }
        match codec::decode(&frame) {
            Ok(msg) => {
                // Corruption that survives decoding must still re-encode
                // to a self-consistent frame.
                let re = msg.encode();
                assert_eq!(codec::decode(&re).expect("re-encoded frame must decode"), msg);
            }
            Err(
                NetError::Codec(_) | NetError::FrameTooLarge { .. } | NetError::Io(_),
            ) => {}
            Err(other) => panic!("unexpected error class for corrupted frame: {other:?}"),
        }
    }
}

#[test]
fn streamed_frames_round_trip_through_read_frame() {
    // A stream of many frames back to back, then a clean EOF: read_frame
    // must hand back each frame intact and end with Ok(None).
    let mut rng = StdRng::seed_from_u64(31);
    let messages: Vec<Message> = (0..32).map(|_| random_message(&mut rng)).collect();
    let mut stream = Vec::new();
    for m in &messages {
        stream.extend_from_slice(&m.encode());
    }
    let mut cursor = std::io::Cursor::new(stream);
    for (i, expected) in messages.iter().enumerate() {
        let frame = codec::read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN)
            .expect("stream read failed")
            .unwrap_or_else(|| panic!("stream ended early at frame {i}"));
        assert_eq!(&codec::decode(&frame).expect("framed bytes must decode"), expected);
    }
    assert!(
        codec::read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("eof read failed").is_none(),
        "clean EOF at a frame boundary must be Ok(None)"
    );
}

#[test]
fn varint_and_rle_id_streams_round_trip_over_random_payloads() {
    // Sorted, clustered, and adversarially random id streams all survive
    // both structure codecs bit-exactly — compression is lossless.
    let mut rng = StdRng::seed_from_u64(0x51DE);
    for _ in 0..200 {
        let n = rng.gen_range(0..256usize);
        let mut ids: Vec<u64> = match rng.gen_range(0..3u32) {
            // Consecutive runs: RLE's best case.
            0 => {
                let start = rng.gen_range(0..1_000_000u64);
                (start..start + n as u64).collect()
            }
            // Sorted sparse ids: varint-delta's case.
            1 => {
                let mut v: Vec<u64> =
                    (0..n).map(|_| rng.gen_range(0..10_000_000u64)).collect();
                v.sort_unstable();
                v
            }
            // Unsorted, full-range ids: zigzag deltas must still work.
            _ => (0..n).map(|_| rng.gen()).collect(),
        };
        if rng.gen_range(0..4u32) == 0 {
            ids.clear();
        }
        for codec in [StructCodec::None, StructCodec::Varint, StructCodec::Rle] {
            let mut buf = Vec::new();
            encode_ids(&ids, codec, &mut buf);
            assert_eq!(buf.len(), encoded_ids_len(&ids, codec), "{codec:?} length model");
            let mut pos = 0;
            let back =
                decode_ids(&buf, &mut pos, codec).expect("valid id stream must decode");
            assert_eq!(pos, buf.len(), "{codec:?} trailing bytes");
            assert_eq!(back, ids, "{codec:?} round trip changed the ids");
        }
    }
}

#[test]
fn f16_and_int8_round_trips_are_idempotent_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0xF16);
    for _ in 0..200 {
        let n = rng.gen_range(1..128usize);
        let row: Vec<f32> = (0..n).map(|_| rng.gen_range(-1000.0f32..1000.0)).collect();

        // f16: one round trip reaches a fixed point and each value lands
        // within half-precision relative tolerance.
        let mut f16_row = row.clone();
        for v in f16_row.iter_mut() {
            *v = f16_to_f32(f32_to_f16(*v));
        }
        for (orig, q) in row.iter().zip(&f16_row) {
            assert!((orig - q).abs() <= orig.abs() * 1e-3 + 1e-6, "f16: {orig} -> {q}");
            assert_eq!(f16_to_f32(f32_to_f16(*q)).to_bits(), q.to_bits(), "f16 fixed point");
        }

        // int8: row-quantized error is bounded by half a step of the
        // row's range, and re-quantizing is a no-op.
        let mut int8_row = row.clone();
        int8_round_trip(&mut int8_row);
        let min = row.iter().copied().fold(f32::INFINITY, f32::min);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let step = (max - min) / 255.0;
        for (orig, q) in row.iter().zip(&int8_row) {
            assert!(
                (orig - q).abs() <= step * 0.51 + 1e-4,
                "int8: {orig} -> {q} outside half-step {step}"
            );
        }
        let mut again = int8_row.clone();
        int8_round_trip(&mut again);
        for (a, b) in int8_row.iter().zip(&again) {
            assert_eq!(a.to_bits(), b.to_bits(), "int8 round trip must be idempotent");
        }
    }
}

#[test]
fn compressed_frames_round_trip_under_every_config() {
    let mut rng = StdRng::seed_from_u64(0xAB1E);
    for cfg in all_configs() {
        for _ in 0..100 {
            let msg = random_message(&mut rng);
            let frame = codec::encode_with(&msg, cfg);
            let back = codec::decode(&frame).expect("valid compressed frame must decode");
            if cfg.lossless() {
                assert_eq!(back, msg, "lossless config {cfg:?} changed the message");
            } else {
                // Quantized floats may differ; identity must not.
                assert_eq!(back.id(), msg.id(), "quantized config {cfg:?} changed identity");
            }
        }
    }
}

#[test]
fn truncated_compressed_frames_are_typed_errors_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x7C);
    for cfg in all_configs() {
        for _ in 0..10 {
            let frame = codec::encode_with(&random_message(&mut rng), cfg);
            for cut in 0..frame.len() {
                assert!(
                    codec::decode(&frame[..cut]).is_err(),
                    "{cfg:?}: decode accepted a frame truncated to {cut}/{}",
                    frame.len()
                );
            }
        }
    }
}

#[test]
fn corrupted_compressed_frames_never_panic_or_over_allocate() {
    let mut rng = StdRng::seed_from_u64(0xBADC0DE);
    for cfg in all_configs() {
        for _ in 0..60 {
            let mut frame = codec::encode_with(&random_message(&mut rng), cfg);
            for _ in 0..rng.gen_range(1..4usize) {
                let pos = rng.gen_range(0..frame.len());
                frame[pos] ^= 1 << rng.gen_range(0..8u32);
            }
            match codec::decode(&frame) {
                // A surviving flip must still describe a coherent message.
                Ok(msg) => {
                    let _ = msg.id();
                }
                Err(
                    NetError::Codec(_) | NetError::FrameTooLarge { .. } | NetError::Io(_),
                ) => {}
                Err(other) => panic!("unexpected error class: {other:?}"),
            }
        }
    }
}

#[test]
fn version_mismatch_is_a_typed_codec_error() {
    let mut rng = StdRng::seed_from_u64(0x7E01);
    for cfg in all_configs() {
        let mut frame = codec::encode_with(&random_message(&mut rng), cfg);
        // Byte 5 is the codec byte; its high nibble is the format version
        // (currently 2) — nibble 3 is a future format.
        frame[5] = (frame[5] & 0x0f) | 0x30;
        match codec::decode(&frame) {
            Err(NetError::Codec(msg)) => {
                assert!(msg.contains("version"), "error should name the version: {msg}")
            }
            other => panic!("future-version frame must be a Codec error, got {other:?}"),
        }
    }
}
