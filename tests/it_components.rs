//! Cross-crate component integration: partition + sparsify + linalg
//! interact correctly on generated datasets.

use splpg_rng::SeedableRng;
use splpg::linalg::{quadratic_form, CgOptions};
use splpg::prelude::*;
use splpg::sparsify::DegreeSparsifier;

fn rng() -> splpg_rng::rngs::StdRng {
    splpg_rng::rngs::StdRng::seed_from_u64(13)
}

#[test]
fn partition_then_sparsify_preserves_node_universe() {
    let data = DatasetSpec::cora().generate(Scale::tiny(), 2).expect("generate");
    let g = data.train_graph();
    let partition = MetisLike::default().partition(&g, 4, &mut rng()).expect("partition");
    let sparsifier = DegreeSparsifier::new(SparsifyConfig::with_alpha(0.15));
    for p in 0..4u32 {
        // Build the partition's halo subgraph in global id space (what the
        // cluster setup does) and sparsify it.
        let mut edges = Vec::new();
        for e in g.edges() {
            if partition.part_of(e.src) == p || partition.part_of(e.dst) == p {
                edges.push((e.src, e.dst));
            }
        }
        let sub = Graph::from_edges(g.num_nodes(), &edges).expect("subgraph");
        let sparse = sparsifier.sparsify(&sub, &mut rng()).expect("sparsify");
        // The sparsified copy keeps the full node universe (SpLPG requires
        // every node addressable for negative sampling).
        assert_eq!(sparse.num_nodes(), g.num_nodes());
        // And samples only edges of the partition subgraph.
        for e in sparse.edges() {
            assert!(sub.has_edge(e.src, e.dst));
        }
    }
}

#[test]
fn sparsified_partition_preserves_quadratic_form_roughly() {
    // Theorem 1 in the cross-crate setting: sparsify a partition subgraph
    // with a generous budget and check the Laplacian quadratic form.
    let data = DatasetSpec::cora().generate(Scale::new(0.05, 8), 4).expect("generate");
    let g = data.train_graph();
    let sparsifier = DegreeSparsifier::new(SparsifyConfig::with_samples(6 * g.num_edges()));
    let sparse = sparsifier.sparsify(&g, &mut rng()).expect("sparsify");
    let mut r = rng();
    use splpg_rng::Rng;
    let mut total_ratio = 0.0;
    let trials = 10;
    for _ in 0..trials {
        let x: Vec<f64> = (0..g.num_nodes()).map(|_| r.gen::<f64>() - 0.5).collect();
        let qf = quadratic_form(&g, &x).expect("qf");
        let qs = quadratic_form(&sparse, &x).expect("qf sparse");
        total_ratio += qs / qf;
    }
    let mean_ratio = total_ratio / trials as f64;
    assert!(
        (mean_ratio - 1.0).abs() < 0.25,
        "mean quadratic-form ratio {mean_ratio} drifted from 1"
    );
}

#[test]
fn exact_resistance_on_generated_graph_respects_bounds() {
    let data = DatasetSpec::cora().generate(Scale::new(0.03, 8), 6).expect("generate");
    let g = data.train_graph();
    let (_, components) = splpg::graph::connected_components(&g);
    if components != 1 {
        // Train graphs can be disconnected after edge removal; exact ER is
        // per-component then, so skip (the property is tested on connected
        // graphs in splpg-linalg).
        return;
    }
    for e in g.edges().iter().take(10) {
        let r = splpg::linalg::effective_resistance(&g, e.src, e.dst, CgOptions::default())
            .expect("resistance");
        let base = 1.0 / g.degree(e.src) as f64 + 1.0 / g.degree(e.dst) as f64;
        assert!(r >= base / 2.0 - 1e-9, "Lovász lower bound violated");
        assert!(r <= 1.0 + 1e-9, "edge resistance cannot exceed 1");
    }
}

#[test]
fn dataset_split_feeds_training_pipeline() {
    let data = DatasetSpec::chameleon().generate(Scale::tiny(), 8).expect("generate");
    // Evaluation negatives were drawn against the *full* graph, so none of
    // them may be a training edge either.
    let g = &data.graph;
    for e in &data.split.test_neg {
        assert!(!g.has_edge(e.src, e.dst));
    }
    // Training graph is a subgraph of the full graph.
    let tg = data.train_graph();
    for e in tg.edges() {
        assert!(g.has_edge(e.src, e.dst));
    }
}

#[test]
fn graph_io_round_trips_generated_dataset() {
    let data = DatasetSpec::actor().generate(Scale::new(0.05, 8), 10).expect("generate");
    let mut buf = Vec::new();
    splpg::graph::write_graph(&mut buf, &data.graph).expect("write");
    let g2 = splpg::graph::read_graph(buf.as_slice()).expect("read");
    assert_eq!(data.graph, g2);
    let mut fbuf = Vec::new();
    splpg::graph::write_features(&mut fbuf, &data.features).expect("write features");
    let f2 = splpg::graph::read_features(fbuf.as_slice()).expect("read features");
    assert_eq!(data.features, f2);
}
