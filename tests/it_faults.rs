//! Fault-injection end-to-end: the cluster runtime must complete, never
//! deadlock, and reproduce bit-for-bit under deterministic wire faults —
//! dropped, duplicated and delayed frames, a crashed worker, and a quorum
//! of `p - 1` (ISSUE acceptance criteria for the fault model).

use splpg::prelude::*;

fn faulty_config(sync: SyncMethod) -> SpLpg {
    SpLpg::builder()
        .workers(3)
        .strategy(Strategy::SpLpg)
        .sync(sync)
        .epochs(3)
        .hidden(8)
        .layers(2)
        .fanouts(vec![Some(5), Some(5)])
        .hits_k(10)
        .seed(29)
        .quorum(2)
        .retry(RetryPolicy { timeout_ms: 200, max_retries: 4, backoff: 2 })
        .wire_faults(FaultPlan {
            drop: 0.1,
            duplicate: 0.05,
            seed: 33,
            // Worker 2 crashes at the start of epoch 1.
            crashes: vec![(2, 1)],
            ..FaultPlan::default()
        })
        .build()
}

fn run_faulty(sync: SyncMethod) -> DistOutcome {
    let data = DatasetSpec::citeseer().generate(Scale::new(0.05, 16), 3).expect("generate");
    faulty_config(sync).run(ModelKind::GraphSage, &data).expect("faulty run must complete")
}

#[test]
fn faulty_run_completes_and_detects_the_crash() {
    let out = run_faulty(SyncMethod::ModelAveraging);
    assert_eq!(out.net.dead_workers, vec![2], "crashed worker not detected");
    assert!(
        out.net.dropped > 0 || out.net.duplicated > 0,
        "fault plan injected nothing: {:?}",
        out.net
    );
    assert!(out.test_hits.is_finite());
    assert_eq!(out.epochs.len(), 3, "every epoch must complete despite faults");
}

#[test]
fn faulty_run_reproduces_in_process() {
    let a = run_faulty(SyncMethod::ModelAveraging);
    let b = run_faulty(SyncMethod::ModelAveraging);
    assert_eq!(a.epochs, b.epochs, "loss curves diverged under identical fault plans");
    assert_eq!(a.test_hits.to_bits(), b.test_hits.to_bits());
    assert_eq!(a.comm, b.comm);
    assert_eq!(a.net.dead_workers, b.net.dead_workers);
}

#[test]
fn faulty_gradient_averaging_survives_quorum_loss_of_one() {
    let out = run_faulty(SyncMethod::GradientAveraging);
    assert_eq!(out.net.dead_workers, vec![2]);
    assert!(out.test_hits.is_finite());
    assert_eq!(out.epochs.len(), 3);
}

/// Final-metrics fingerprint of a faulty run, printed by child processes.
fn fault_fingerprint() -> String {
    let out = run_faulty(SyncMethod::ModelAveraging);
    let mut losses = String::new();
    for e in &out.epochs {
        losses.push_str(&format!("{:08x},", e.mean_loss.to_bits()));
    }
    format!(
        "hits={:016x} loss=[{losses}] comm={} dead={:?}",
        out.test_hits.to_bits(),
        out.comm.total_bytes(),
        out.net.dead_workers
    )
}

/// The chaos config as a bare trainer, for the multi-process entry points.
fn faulty_trainer(workers: usize) -> DistTrainer {
    let s = faulty_config(SyncMethod::ModelAveraging);
    DistTrainer::new(
        DistConfig { num_workers: workers, ..s.dist_config().clone() },
        s.train_config().clone(),
    )
}

/// Master-observable fingerprint of a chaos run. Worker-side fault
/// counters live in the worker's process in multi-process mode, so only
/// what the master can see — loss curve, accuracy, communication meters,
/// detected deaths — is comparable across transports.
fn master_fingerprint(out: &DistOutcome) -> String {
    let mut losses = String::new();
    for e in &out.epochs {
        losses.push_str(&format!("{:08x},", e.mean_loss.to_bits()));
    }
    format!(
        "hits={:016x} loss=[{losses}] comm={} dead={:?}",
        out.test_hits.to_bits(),
        out.comm.total_bytes(),
        out.net.dead_workers
    )
}

#[test]
fn socket_chaos_reproduces_the_channel_chaos_run() {
    // The same deterministic fault plan — drops, duplicates, worker 2
    // crashing at epoch 1, quorum p-1 — over real worker processes and
    // loopback TCP sockets. Fault decisions are a pure function of
    // (seed, lane, kind, message id), never of the transport underneath,
    // so the master-observable outcome must be identical to the
    // in-process channel run, and reproducible across repeated spawns.
    // The crash is a real process death here: the worker's serve loop
    // returns at its crash epoch and the child exits.
    let served = tcp_worker_entry(|workers| {
        let data = DatasetSpec::citeseer()
            .generate(Scale::new(0.05, 16), 3)
            .map_err(|e| splpg::dist::DistError::Process(e.to_string()))?;
        Ok((faulty_trainer(workers), ModelKind::GraphSage, data))
    })
    .expect("worker child failed");
    if served {
        return;
    }
    if std::net::TcpListener::bind(("127.0.0.1", 0)).is_err() {
        eprintln!("SKIP: loopback sockets unavailable in this environment");
        return;
    }
    let channel = run_faulty(SyncMethod::ModelAveraging);
    let child_args: Vec<String> = [
        "socket_chaos_reproduces_the_channel_chaos_run",
        "--exact",
        "--nocapture",
        "--test-threads=1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let data = DatasetSpec::citeseer().generate(Scale::new(0.05, 16), 3).expect("generate");
    let t = faulty_trainer(3);
    let first =
        t.run_multiprocess(ModelKind::GraphSage, &data, &child_args).expect("chaos over tcp");
    let second =
        t.run_multiprocess(ModelKind::GraphSage, &data, &child_args).expect("chaos over tcp");
    assert_eq!(first.net.dead_workers, vec![2], "crashed worker process not detected");
    assert_eq!(
        master_fingerprint(&first),
        master_fingerprint(&channel),
        "chaos outcome over sockets diverged from the in-process channel run"
    );
    assert_eq!(
        master_fingerprint(&first),
        master_fingerprint(&second),
        "chaos outcome diverged across repeated multi-process spawns"
    );
}

#[test]
fn faulty_metrics_reproduce_across_fresh_processes() {
    // Same seed, two fresh OS processes: the final metrics must be
    // identical. In-process repetition cannot catch per-process
    // randomness (ASLR-fed hashers, time-derived state), so the test
    // re-executes itself twice as child processes and compares the
    // metric lines they print.
    if std::env::var_os("SPLPG_DET_CHILD").is_some() {
        println!("SPLPG_FAULT_FP={}", fault_fingerprint());
        return;
    }
    let exe = std::env::current_exe().expect("current_exe");
    let run_child = || {
        let out = std::process::Command::new(&exe)
            .args([
                "faulty_metrics_reproduce_across_fresh_processes",
                "--exact",
                "--nocapture",
                "--test-threads=1",
            ])
            .env("SPLPG_DET_CHILD", "1")
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "child run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find_map(|l| l.split("SPLPG_FAULT_FP=").nth(1).map(str::to_string))
            .expect("child did not print a fault fingerprint")
    };
    let first = run_child();
    let second = run_child();
    assert_eq!(first, second, "faulty-run metrics diverged across fresh processes");
}
