//! End-to-end integration: dataset generation -> partitioning ->
//! sparsification -> distributed training -> evaluation, across
//! strategies and model architectures.

use splpg::prelude::*;

fn tiny() -> Dataset {
    DatasetSpec::cora().generate(Scale::new(0.05, 16), 21).expect("generate")
}

fn quick(strategy: Strategy, model: ModelKind, workers: usize) -> DistOutcome {
    SpLpg::builder()
        .workers(workers)
        .strategy(strategy)
        .epochs(2)
        .hidden(8)
        .layers(2)
        .fanouts(vec![Some(5), Some(5)])
        .hits_k(10)
        .build()
        .run(model, &tiny())
        .expect("training run")
}

#[test]
fn every_strategy_completes() {
    for strategy in Strategy::ALL {
        let workers = if strategy == Strategy::Centralized { 1 } else { 2 };
        let out = quick(strategy, ModelKind::GraphSage, workers);
        assert!(
            out.test_hits.is_finite() && (0.0..=1.0).contains(&out.test_hits),
            "{strategy}: bad hits {}",
            out.test_hits
        );
        assert!(out.epochs.iter().all(|e| e.mean_loss.is_finite()), "{strategy}: NaN loss");
    }
}

#[test]
fn every_model_trains_distributed() {
    for model in ModelKind::ALL {
        let out = quick(Strategy::SpLpg, model, 2);
        assert!(out.test_hits.is_finite(), "{model} produced non-finite hits");
    }
}

#[test]
fn comm_cost_ordering_holds() {
    // The paper's central cost claim, as an invariant:
    // 0 = local-only < SpLPG < complete sharing.
    let local = quick(Strategy::PsgdPa, ModelKind::GraphSage, 2);
    let splpg = quick(Strategy::SpLpg, ModelKind::GraphSage, 2);
    let plus = quick(Strategy::SpLpgPlus, ModelKind::GraphSage, 2);
    assert_eq!(local.comm.total_bytes(), 0);
    assert!(splpg.comm.total_bytes() > 0);
    assert!(
        splpg.comm.total_bytes() < plus.comm.total_bytes(),
        "sparsified sharing ({}) must be cheaper than complete sharing ({})",
        splpg.comm.total_bytes(),
        plus.comm.total_bytes()
    );
}

#[test]
fn comm_cost_decreases_with_alpha() {
    let data = tiny();
    let run = |alpha: f64| {
        SpLpg::builder()
            .workers(2)
            .strategy(Strategy::SpLpg)
            .sparsification_alpha(alpha)
            .epochs(2)
            .hidden(8)
            .layers(2)
            .fanouts(vec![Some(5), Some(5)])
            .hits_k(10)
            .build()
            .run(ModelKind::GraphSage, &data)
            .expect("run")
            .comm
            .total_bytes()
    };
    let heavy = run(0.6);
    let light = run(0.05);
    assert!(
        light < heavy,
        "alpha 0.05 ({light}) should transfer less than alpha 0.6 ({heavy})"
    );
}

#[test]
fn model_and_gradient_averaging_both_work() {
    let data = tiny();
    for sync in [SyncMethod::ModelAveraging, SyncMethod::GradientAveraging] {
        let out = SpLpg::builder()
            .workers(2)
            .strategy(Strategy::SpLpg)
            .sync(sync)
            .epochs(2)
            .hidden(8)
            .layers(2)
            .fanouts(vec![Some(5), Some(5)])
            .hits_k(10)
            .build()
            .run(ModelKind::Gcn, &data)
            .expect("run");
        assert!(out.test_hits.is_finite(), "{sync:?} failed");
    }
}

#[test]
fn worker_counts_scale() {
    for p in [2usize, 4, 8] {
        let out = quick(Strategy::SpLpg, ModelKind::GraphSage, p);
        assert!(out.test_hits.is_finite(), "p = {p} failed");
    }
}
